//! Structured trace spans and the fixed-size span journal.
//!
//! A request carries a `trace_id` (a nonzero `u64`, generated at the
//! client and propagated on the wire; `0` means "untraced"). Each
//! pipeline stage the request crosses — readiness loop, dispatch
//! queue, broker admission, fairness lane, flight, solve — records one
//! [`SpanRecord`] into a shared [`SpanJournal`], a bounded ring buffer
//! that keeps the most recent spans and can be dumped as JSON lines or
//! snapshotted for the op-4 introspection response.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One completed span: a stage a traced request passed through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Request trace id; `0` marks an untraced/internal span.
    pub trace_id: u64,
    /// Stage name, e.g. `server.recv` or `broker.solve`.
    pub stage: String,
    /// Stage entry time, clock-relative monotonic nanoseconds.
    pub start_ns: u64,
    /// Stage exit time, clock-relative monotonic nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds (zero if the clock is a no-op or
    /// the record is malformed).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A bounded ring buffer of recent spans.
///
/// Recording is append-at-tail; once `capacity` spans are held the
/// oldest is overwritten. The ring is **per-slot locked**: an atomic
/// cursor hands each recorder its own slot, so concurrent recorders
/// contend only in the (rare) case of lapping the same slot — one
/// global lock here would serialize every traced request in the
/// serving layer. Snapshots walk the slots oldest-first; under
/// concurrent recording they are a best-effort view (observability
/// data, not an accounting ledger).
#[derive(Debug)]
pub struct SpanJournal {
    capacity: usize,
    /// Total spans ever recorded; `% capacity` picks the slot.
    next: AtomicUsize,
    slots: Vec<Mutex<Option<SpanRecord>>>,
}

impl SpanJournal {
    /// A journal keeping at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            next: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a span, evicting the oldest if full.
    pub fn record(&self, span: SpanRecord) {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        *self.slots[n % self.capacity]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(span);
    }

    /// Convenience: build and append a span in one call.
    pub fn record_span(&self, trace_id: u64, stage: &str, start_ns: u64, end_ns: u64) {
        self.record(SpanRecord {
            trace_id,
            stage: stage.to_owned(),
            start_ns,
            end_ns,
        });
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.capacity)
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the retained spans, oldest first. Slots whose write is
    /// still in flight are skipped rather than waited on.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let n = self.next.load(Ordering::Acquire);
        let (start, count) = if n <= self.capacity {
            (0, n)
        } else {
            (n % self.capacity, self.capacity)
        };
        (0..count)
            .filter_map(|i| {
                self.slots[(start + i) % self.capacity]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone()
            })
            .collect()
    }

    /// Drop all retained spans.
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.next.store(0, Ordering::Release);
    }

    /// Dump the journal as JSON lines (one span object per line,
    /// oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.snapshot() {
            out.push_str(&format!(
                "{{\"trace_id\":{},\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}\n",
                span.trace_id,
                json_escape(&span.stage),
                span.start_ns,
                span.end_ns
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, stage: &str, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            stage: stage.to_owned(),
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn journal_keeps_most_recent_spans() {
        let j = SpanJournal::new(3);
        for i in 0..5u64 {
            j.record(span(i, "s", i, i + 1));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<u64> = snap.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest spans evicted first");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let j = SpanJournal::new(0);
        assert_eq!(j.capacity(), 1);
        j.record_span(7, "only", 0, 1);
        j.record_span(8, "only", 1, 2);
        assert_eq!(j.len(), 1);
        assert_eq!(j.snapshot()[0].trace_id, 8);
    }

    #[test]
    fn jsonl_dump_escapes_and_orders() {
        let j = SpanJournal::new(8);
        j.record_span(1, "server.recv", 10, 20);
        j.record_span(1, "odd\"stage\\\n", 20, 30);
        let dump = j.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"trace_id\":1,\"stage\":\"server.recv\",\"start_ns\":10,\"end_ns\":20}"
        );
        assert_eq!(
            lines[1],
            "{\"trace_id\":1,\"stage\":\"odd\\\"stage\\\\\\n\",\"start_ns\":20,\"end_ns\":30}"
        );
    }

    #[test]
    fn duration_saturates() {
        assert_eq!(span(1, "s", 10, 25).duration_ns(), 15);
        assert_eq!(span(1, "s", 25, 10).duration_ns(), 0);
    }

    #[test]
    fn clear_empties_journal() {
        let j = SpanJournal::new(4);
        j.record_span(1, "a", 0, 1);
        assert!(!j.is_empty());
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.to_jsonl(), "");
    }
}
