//! # cyclesteal-bench
//!
//! Shared plumbing for the experiment regenerators (the `E*`/table benches
//! listed in DESIGN.md §4) and the criterion performance benches.
//!
//! Every E-series bench prints its table to stdout **and** appends it to
//! `target/experiments/<name>.txt`, which is what EXPERIMENTS.md quotes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment outputs are archived.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// A sink that mirrors every line to stdout and to
/// `target/experiments/<name>.txt` (truncated at construction).
pub struct Report {
    file: fs::File,
}

impl Report {
    /// Opens (and truncates) the named experiment report.
    pub fn new(name: &str) -> Report {
        let path = experiments_dir().join(format!("{name}.txt"));
        let file = fs::File::create(&path).expect("create experiment report");
        Report { file }
    }

    /// Writes one line to both sinks.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        writeln!(self.file, "{s}").expect("write experiment report");
    }

    /// Writes a multi-line block to both sinks.
    pub fn block(&mut self, s: impl AsRef<str>) {
        for line in s.as_ref().lines() {
            self.line(line);
        }
    }
}

/// Standard setup charge used throughout the E-series (everything scales
/// with `U/c`, so `c = 1` loses no generality).
pub const C: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_both_sinks() {
        let mut r = Report::new("selftest");
        r.line("hello");
        r.block("a\nb");
        let text = fs::read_to_string(experiments_dir().join("selftest.txt")).unwrap();
        assert_eq!(text, "hello\na\nb\n");
    }
}
