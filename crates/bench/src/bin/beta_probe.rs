use cyclesteal_core::prelude::*;
use cyclesteal_dp::{SolveOptions, ValueTable};

fn main() {
    // Predicted: beta_p = (beta_{p-1} + sqrt(beta_{p-1}^2+4))/2, beta_1 = 1.
    let mut beta = vec![0.0f64, 1.0];
    for _ in 2..=5 {
        let b = beta.last().unwrap();
        beta.push((b + (b * b + 4.0).sqrt()) / 2.0);
    }
    println!("predicted beta: {:?}", &beta[1..]);
    let opts = SolveOptions {
        keep_policy: false,
        // Deep single solve: let the intra-level segmented sweep use the
        // machine's workers (CYCLESTEAL_THREADS still overrides).
        threads: 0,
        ..SolveOptions::default()
    };
    let table = ValueTable::solve(secs(1.0), 8, secs(131072.0), 4, opts);
    for p in 1..=4u32 {
        print!("p={p} measured:");
        for &u in &[4096.0, 16384.0, 65536.0, 131072.0] {
            let w = table.value(p, secs(u));
            print!(" U={u}: {:.4}", (u - w.get()) / (2.0 * u).sqrt());
        }
        println!("  predicted {:.4}", beta[p as usize]);
    }
}
