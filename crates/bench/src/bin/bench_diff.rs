//! Perf-trajectory gate: compares two `BENCH_dp.json` snapshots and
//! fails (exit 1) on regressions beyond a threshold.
//!
//! The CI `bench-diff` job downloads the previous successful run's
//! `BENCH_dp` artifact as the baseline and the fresh quick-mode output
//! as the candidate; locally the same comparison runs against any saved
//! snapshot:
//!
//! ```sh
//! cargo run -p cyclesteal-bench --bin bench_diff -- \
//!     baseline/BENCH_dp.json BENCH_dp.json --threshold 0.10
//! ```
//!
//! Gated keys: the wall-clock solve timings `frontier_sweep_solve_s`,
//! `parallel_solve_s`, `compressed_solve_s`, `event_driven_solve_s` and
//! the serving layer's `warm_start_s` and batch tail latency
//! `serve_p99_us` (lower is better; shared CI runners make these noisy,
//! so treat a timing failure as a prompt to re-run before believing
//! it), the broker throughput `serve_qps` and the batch simulator's
//! `sim_episodes_per_s` (**higher** is better — the gate fails on a
//! drop beyond the threshold), plus the deterministic
//! structure counters —
//! `event_count` (the event-driven build's loop iterations) and the
//! second-order compression sizes `run_compressed_breakpoints` /
//! `run_memory_bytes` — which are fully reproducible for a given code
//! revision and therefore catch algorithmic regressions with zero
//! noise.
//!
//! One gate is **intra-run** rather than baseline-relative: the fresh
//! snapshot's `serve_qps_instrumented` (broker throughput with tracing
//! and solver phase profiling on) must stay within 10% of its own
//! `serve_qps` — two measurements from the same run on the same
//! machine, so runner noise mostly cancels and the ratio isolates the
//! observability overhead itself.
//!
//! A gated key missing from the *baseline* but present in the fresh
//! snapshot is a **newly introduced field**: it is reported (`new field
//! (absent in baseline) — gated from the next baseline on`) and never
//! fails the gate, so landing a new measurement does not require a
//! manual baseline refresh. Keys missing from the fresh snapshot (or
//! both sides) are likewise skipped with a note — quick mode
//! intentionally omits the dense-comparison fields. A missing baseline
//! *file* passes with a note so the first run of a fresh repository (or
//! a fork without artifact history) is green.
//!
//! No JSON crate is vendored, so the parser is a deliberately minimal
//! `"key": number` scanner — exactly the shape `perf_dp` emits.

use std::process::ExitCode;

/// Keys gated on regression where **lower is better**, in report
/// order. The `_s` keys are wall-clock seconds; `event_count`,
/// `run_compressed_breakpoints` and `run_memory_bytes` are the
/// deterministic counters of the event-driven build and its run-backed
/// storage; `warm_start_s` is the snapshot-load + first-query restart
/// path of the serving layer and `serve_p99_us` the broker's batch
/// tail latency under the throughput load. `parallel_solve_s` is the
/// intra-level
/// segmented solve at 4+ workers (its companion `parallel_speedup` is a
/// higher-is-better ratio and deliberately not gated — the timing
/// already is, and `warm_start_speedup` is ungated for the same
/// reason).
const GATED_KEYS_LOWER: [&str; 9] = [
    "frontier_sweep_solve_s",
    "parallel_solve_s",
    "compressed_solve_s",
    "event_driven_solve_s",
    "event_count",
    "run_compressed_breakpoints",
    "run_memory_bytes",
    "warm_start_s",
    "serve_p99_us",
];

/// Keys gated on regression where **higher is better**: a drop beyond
/// the threshold fails, a rise is an improvement. `serve_qps` is the
/// broker's batched query throughput and `serve_qps_64c` the same
/// workload at 64 concurrent client threads — the readiness-loop
/// concurrency acceptance point (its companion `serve_p99_64c_us` is
/// an informational stamp; the gated tail latency is `serve_p99_us`);
/// `sim_episodes_per_s` is the struct-of-arrays batch simulator's
/// episode throughput at the acceptance point (its companions
/// `sim_batch_episodes` and `sim_batch_threads` are configuration
/// stamps, deliberately ungated).
const GATED_KEYS_HIGHER: [&str; 3] = ["serve_qps", "serve_qps_64c", "sim_episodes_per_s"];

/// Floor on `serve_qps_instrumented / serve_qps` within one fresh
/// snapshot: full observability (per-request tracing + solver phase
/// profiling) may cost at most 10% of broker throughput.
const INSTRUMENTED_QPS_FLOOR: f64 = 0.90;

/// The intra-run observability-overhead gate: compares the fresh
/// snapshot's instrumented broker throughput against its own baseline
/// throughput. Returns `Some((baseline_qps, instrumented_qps))` when
/// the instrumented number fell below the floor; `None` when it holds
/// or either field is absent (pre-obs snapshots must keep passing).
fn instrumented_overhead_violation(fresh: &str) -> Option<(f64, f64)> {
    let base = get_number(fresh, "serve_qps")?;
    let instrumented = get_number(fresh, "serve_qps_instrumented")?;
    (base > 0.0 && instrumented < INSTRUMENTED_QPS_FLOOR * base).then_some((base, instrumented))
}

/// Extracts `"key": <number>` from a flat JSON document. Only the first
/// occurrence is considered; returns `None` when the key is absent or
/// its value is not a bare number.
fn get_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": true|false` from a flat JSON document.
fn get_bool(json: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start().strip_prefix(':')?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// One gated key's comparison outcome.
#[derive(Clone, Debug, PartialEq)]
enum Verdict {
    /// Both sides present, delta within the threshold.
    Ok { delta: f64 },
    /// Both sides present, improved beyond the threshold.
    Improved { delta: f64 },
    /// Both sides present, regressed beyond the threshold — the only
    /// verdict that fails the gate.
    Regression { base: f64, new: f64, delta: f64 },
    /// Present in the fresh snapshot only: a newly introduced gated
    /// field, tolerated and reported until a baseline carries it.
    NewField,
    /// Absent somewhere else (fresh snapshot, or both sides), or a
    /// non-positive baseline value that admits no ratio.
    Skipped { why: &'static str },
}

/// One gated key's comparison: the parsed values from each side (kept
/// so the report never re-scans the documents) and the verdict.
#[derive(Clone, Debug)]
struct KeyDiff {
    key: &'static str,
    base: Option<f64>,
    new: Option<f64>,
    verdict: Verdict,
}

/// Compares every gated key of two snapshots. Pure — the CLI wrapper
/// adds I/O and formatting; the unit tests drive this directly. The
/// reported `delta` is always the raw relative change `(new−base)/base`;
/// for higher-is-better keys the *sign that fails* flips.
fn compare(baseline: &str, fresh: &str, threshold: f64) -> Vec<KeyDiff> {
    let lower = GATED_KEYS_LOWER.iter().map(|&k| (k, false));
    let higher = GATED_KEYS_HIGHER.iter().map(|&k| (k, true));
    lower
        .chain(higher)
        .map(|(key, higher_is_better)| {
            let (base, new) = (get_number(baseline, key), get_number(fresh, key));
            let verdict = match (base, new) {
                (Some(base), Some(new)) if base > 0.0 => {
                    let delta = (new - base) / base;
                    // The direction that counts as a regression flips
                    // for throughput-style keys.
                    let regressed = if higher_is_better { -delta } else { delta };
                    if regressed > threshold {
                        Verdict::Regression { base, new, delta }
                    } else if regressed < -threshold {
                        Verdict::Improved { delta }
                    } else {
                        Verdict::Ok { delta }
                    }
                }
                // Present on both sides but no usable ratio: a zero or
                // negative baseline is a corrupt/truncated snapshot, not
                // an absent field — say so instead of gating on it.
                (Some(_), Some(_)) => Verdict::Skipped {
                    why: "non-positive baseline",
                },
                (None, Some(_)) => Verdict::NewField,
                (Some(_), None) => Verdict::Skipped {
                    why: "absent in fresh snapshot",
                },
                (None, None) => Verdict::Skipped {
                    why: "absent on both sides",
                },
            };
            KeyDiff {
                key,
                base,
                new,
                verdict,
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a fraction, e.g. 0.10");
                    std::process::exit(2);
                });
            }
            p => paths.push(p),
        }
        i += 1;
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json> [--threshold 0.10]");
        return ExitCode::from(2);
    };

    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_diff: cannot read fresh snapshot {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            println!("bench_diff: no baseline at {baseline_path} ({e}) — nothing to gate, passing");
            return ExitCode::SUCCESS;
        }
    };

    if get_bool(&baseline, "quick_mode") != get_bool(&fresh, "quick_mode") {
        println!(
            "bench_diff: warning — baseline and fresh snapshots ran in different modes \
             (quick vs full); timings compare single runs against medians"
        );
    }

    println!(
        "{:<26} {:>14} {:>14} {:>9}  verdict (threshold +{:.0}%)",
        "key",
        "baseline",
        "fresh",
        "delta",
        threshold * 100.0
    );
    let results = compare(&baseline, &fresh, threshold);
    let mut regressions = Vec::new();
    for diff in &results {
        let key = diff.key;
        match &diff.verdict {
            Verdict::Ok { delta } | Verdict::Improved { delta } => {
                let word = if matches!(diff.verdict, Verdict::Improved { .. }) {
                    "improved"
                } else {
                    "ok"
                };
                // Ok/Improved imply both sides parsed.
                let (base, new) = (diff.base.expect("parsed"), diff.new.expect("parsed"));
                println!(
                    "{key:<26} {base:>14.6} {new:>14.6} {:>+8.1}%  {word}",
                    delta * 100.0
                );
            }
            Verdict::Regression { base, new, delta } => {
                regressions.push((key, *base, *new, *delta));
                println!(
                    "{key:<26} {base:>14.6} {new:>14.6} {:>+8.1}%  REGRESSION",
                    delta * 100.0
                );
            }
            Verdict::NewField => {
                println!(
                    "{key:<26} {:>14} {:>14.6} {:>9}  new field (absent in baseline) — gated from the next baseline on",
                    "—",
                    diff.new.expect("NewField implies a fresh value"),
                    "—"
                );
            }
            Verdict::Skipped { why } => {
                println!(
                    "{key:<26} {:>14} {:>14} {:>9}  skipped ({why})",
                    diff.base.map_or("—".into(), |b| format!("{b:.6}")),
                    diff.new.map_or("—".into(), |n| format!("{n:.6}")),
                    "—"
                );
            }
        }
    }

    // The intra-run observability gate reads only the fresh snapshot.
    match instrumented_overhead_violation(&fresh) {
        Some((base, instrumented)) => {
            regressions.push((
                "serve_qps_instrumented",
                base,
                instrumented,
                instrumented / base - 1.0,
            ));
            eprintln!(
                "bench_diff: serve_qps_instrumented is {:.1}% of serve_qps in the same run \
                 (floor {:.0}%) — observability overhead over budget",
                100.0 * instrumented / base,
                INSTRUMENTED_QPS_FLOOR * 100.0
            );
        }
        None => {
            if let (Some(base), Some(instrumented)) = (
                get_number(&fresh, "serve_qps"),
                get_number(&fresh, "serve_qps_instrumented"),
            ) {
                println!(
                    "{:<26} {:>14} {:>14.6} {:>+8.1}%  ok (intra-run, floor -{:.0}%)",
                    "serve_qps_instrumented",
                    "(serve_qps)",
                    instrumented,
                    100.0 * (instrumented / base - 1.0),
                    (1.0 - INSTRUMENTED_QPS_FLOOR) * 100.0
                );
            }
        }
    }

    if regressions.is_empty() {
        println!(
            "bench_diff: no gated regression beyond {:.0}%",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for (key, base, new, delta) in &regressions {
            eprintln!(
                "bench_diff: {key} regressed {:+.1}% ({base} -> {new})",
                delta * 100.0
            );
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, f64)]) -> String {
        let fields: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect();
        format!("{{\n{}\n}}\n", fields.join(",\n"))
    }

    fn verdict_for<'a>(results: &'a [KeyDiff], key: &str) -> &'a Verdict {
        &results
            .iter()
            .find(|d| d.key == key)
            .expect("gated key")
            .verdict
    }

    fn has_regression(results: &[KeyDiff]) -> bool {
        results
            .iter()
            .any(|d| matches!(d.verdict, Verdict::Regression { .. }))
    }

    #[test]
    fn newly_introduced_gated_field_is_reported_not_failed() {
        // A baseline from before this PR: no run_compressed_* fields.
        let baseline = snapshot(&[
            ("frontier_sweep_solve_s", 0.15),
            ("event_count", 55_969_025.0),
        ]);
        // A fresh snapshot that carries the new gated fields.
        let fresh = snapshot(&[
            ("frontier_sweep_solve_s", 0.15),
            ("event_count", 55_969_025.0),
            ("run_compressed_breakpoints", 500_000.0),
            ("run_memory_bytes", 16_000_000.0),
        ]);
        let results = compare(&baseline, &fresh, 0.10);
        assert!(!has_regression(&results), "new fields must never fail");
        assert_eq!(
            verdict_for(&results, "run_compressed_breakpoints"),
            &Verdict::NewField
        );
        assert_eq!(
            verdict_for(&results, "run_memory_bytes"),
            &Verdict::NewField
        );
        // Fields present on both sides still gate normally.
        assert!(matches!(
            verdict_for(&results, "event_count"),
            Verdict::Ok { .. }
        ));
    }

    #[test]
    fn regression_beyond_threshold_fails_and_improvement_does_not() {
        let baseline = snapshot(&[("event_count", 100.0), ("frontier_sweep_solve_s", 1.0)]);
        let fresh = snapshot(&[("event_count", 120.0), ("frontier_sweep_solve_s", 0.5)]);
        let results = compare(&baseline, &fresh, 0.10);
        assert!(matches!(
            verdict_for(&results, "event_count"),
            Verdict::Regression { delta, .. } if (*delta - 0.2).abs() < 1e-12
        ));
        assert!(matches!(
            verdict_for(&results, "frontier_sweep_solve_s"),
            Verdict::Improved { .. }
        ));
    }

    #[test]
    fn higher_is_better_keys_gate_on_drops_not_rises() {
        // serve_qps doubling is an improvement; halving is a regression.
        // serve_qps_64c carries the same contract at 64 client threads.
        let baseline = snapshot(&[
            ("serve_qps", 100_000.0),
            ("serve_qps_64c", 80_000.0),
            ("warm_start_s", 0.05),
        ]);
        let faster = snapshot(&[
            ("serve_qps", 200_000.0),
            ("serve_qps_64c", 160_000.0),
            ("warm_start_s", 0.04),
        ]);
        let results = compare(&baseline, &faster, 0.10);
        assert!(matches!(
            verdict_for(&results, "serve_qps"),
            Verdict::Improved { .. }
        ));
        assert!(matches!(
            verdict_for(&results, "serve_qps_64c"),
            Verdict::Improved { .. }
        ));
        assert!(!has_regression(&results));

        let slower = snapshot(&[
            ("serve_qps", 50_000.0),
            ("serve_qps_64c", 40_000.0),
            ("warm_start_s", 0.05),
        ]);
        let results = compare(&baseline, &slower, 0.10);
        assert!(matches!(
            verdict_for(&results, "serve_qps"),
            Verdict::Regression { delta, .. } if (*delta + 0.5).abs() < 1e-12
        ));
        assert!(matches!(
            verdict_for(&results, "serve_qps_64c"),
            Verdict::Regression { delta, .. } if (*delta + 0.5).abs() < 1e-12
        ));
    }

    #[test]
    fn sim_throughput_gates_on_drops_not_rises() {
        // sim_episodes_per_s mirrors serve_qps: a drop beyond the
        // threshold regresses, a rise improves, and staying flat is ok.
        let baseline = snapshot(&[("sim_episodes_per_s", 1_000_000.0)]);
        let results = compare(
            &baseline,
            &snapshot(&[("sim_episodes_per_s", 2_000_000.0)]),
            0.10,
        );
        assert!(matches!(
            verdict_for(&results, "sim_episodes_per_s"),
            Verdict::Improved { .. }
        ));
        assert!(!has_regression(&results));

        let results = compare(
            &baseline,
            &snapshot(&[("sim_episodes_per_s", 800_000.0)]),
            0.10,
        );
        assert!(matches!(
            verdict_for(&results, "sim_episodes_per_s"),
            Verdict::Regression { delta, .. } if (*delta + 0.2).abs() < 1e-12
        ));

        let results = compare(
            &baseline,
            &snapshot(&[("sim_episodes_per_s", 950_000.0)]),
            0.10,
        );
        assert!(matches!(
            verdict_for(&results, "sim_episodes_per_s"),
            Verdict::Ok { .. }
        ));
    }

    #[test]
    fn sim_throughput_is_new_against_a_pre_batch_baseline() {
        // A baseline from before the batch simulator existed: the new
        // gated field must report, never fail — same contract the
        // serving fields got when they landed.
        let baseline = snapshot(&[("serve_qps", 150_000.0)]);
        let fresh = snapshot(&[
            ("serve_qps", 150_000.0),
            ("sim_episodes_per_s", 1_200_000.0),
        ]);
        let results = compare(&baseline, &fresh, 0.10);
        assert!(!has_regression(&results));
        assert_eq!(
            verdict_for(&results, "sim_episodes_per_s"),
            &Verdict::NewField
        );
        assert!(matches!(
            verdict_for(&results, "serve_qps"),
            Verdict::Ok { .. }
        ));
    }

    #[test]
    fn serve_tail_latency_gates_lower_is_better() {
        // serve_p99_us is a latency: a rise past threshold regresses, a
        // drop improves.
        let baseline = snapshot(&[("serve_p99_us", 2_000.0)]);
        let results = compare(&baseline, &snapshot(&[("serve_p99_us", 3_000.0)]), 0.10);
        assert!(matches!(
            verdict_for(&results, "serve_p99_us"),
            Verdict::Regression { delta, .. } if (*delta - 0.5).abs() < 1e-12
        ));
        let results = compare(&baseline, &snapshot(&[("serve_p99_us", 1_500.0)]), 0.10);
        assert!(matches!(
            verdict_for(&results, "serve_p99_us"),
            Verdict::Improved { .. }
        ));
        assert!(!has_regression(&results));
    }

    #[test]
    fn serving_fields_are_new_against_a_pre_serve_baseline() {
        // A baseline from before the serving subsystem: the new gated
        // fields must report, never fail.
        let baseline = snapshot(&[("frontier_sweep_solve_s", 0.11)]);
        let fresh = snapshot(&[
            ("frontier_sweep_solve_s", 0.11),
            ("warm_start_s", 0.05),
            ("serve_qps", 150_000.0),
            ("serve_qps_64c", 120_000.0),
            ("serve_p99_us", 2_500.0),
        ]);
        let results = compare(&baseline, &fresh, 0.10);
        assert!(!has_regression(&results));
        assert_eq!(verdict_for(&results, "warm_start_s"), &Verdict::NewField);
        assert_eq!(verdict_for(&results, "serve_qps"), &Verdict::NewField);
        assert_eq!(verdict_for(&results, "serve_qps_64c"), &Verdict::NewField);
        assert_eq!(verdict_for(&results, "serve_p99_us"), &Verdict::NewField);
    }

    #[test]
    fn quick_mode_omissions_and_corrupt_baselines_are_skipped() {
        let baseline = snapshot(&[("compressed_solve_s", 0.0), ("event_driven_solve_s", 0.7)]);
        let fresh = snapshot(&[("compressed_solve_s", 0.2)]);
        let results = compare(&baseline, &fresh, 0.10);
        assert_eq!(
            verdict_for(&results, "compressed_solve_s"),
            &Verdict::Skipped {
                why: "non-positive baseline"
            }
        );
        assert_eq!(
            verdict_for(&results, "event_driven_solve_s"),
            &Verdict::Skipped {
                why: "absent in fresh snapshot"
            }
        );
        assert_eq!(
            verdict_for(&results, "event_count"),
            &Verdict::Skipped {
                why: "absent on both sides"
            }
        );
        assert!(!has_regression(&results));
    }

    #[test]
    fn instrumented_qps_gates_within_one_run() {
        // Within budget: 95% of baseline passes the 90% floor.
        let ok = snapshot(&[
            ("serve_qps", 100_000.0),
            ("serve_qps_instrumented", 95_000.0),
        ]);
        assert_eq!(instrumented_overhead_violation(&ok), None);

        // Over budget: 80% of baseline violates.
        let slow = snapshot(&[
            ("serve_qps", 100_000.0),
            ("serve_qps_instrumented", 80_000.0),
        ]);
        assert_eq!(
            instrumented_overhead_violation(&slow),
            Some((100_000.0, 80_000.0))
        );

        // Pre-obs snapshots (field absent) and corrupt baselines never
        // trip the gate.
        assert_eq!(
            instrumented_overhead_violation(&snapshot(&[("serve_qps", 100_000.0)])),
            None
        );
        assert_eq!(
            instrumented_overhead_violation(&snapshot(&[("serve_qps_instrumented", 50_000.0)])),
            None
        );
        assert_eq!(
            instrumented_overhead_violation(&snapshot(&[
                ("serve_qps", 0.0),
                ("serve_qps_instrumented", 0.0),
            ])),
            None
        );
    }

    #[test]
    fn number_scanner_handles_the_emitted_shape() {
        let json = "{\n  \"bench\": \"perf_dp\",\n  \"run_memory_bytes\": 15728640,\n  \"quick_mode\": true\n}\n";
        assert_eq!(get_number(json, "run_memory_bytes"), Some(15_728_640.0));
        assert_eq!(get_number(json, "missing"), None);
        assert_eq!(get_bool(json, "quick_mode"), Some(true));
    }
}
