//! Perf-trajectory gate: compares two `BENCH_dp.json` snapshots and
//! fails (exit 1) on regressions beyond a threshold.
//!
//! The CI `bench-diff` job downloads the previous successful run's
//! `BENCH_dp` artifact as the baseline and the fresh quick-mode output
//! as the candidate; locally the same comparison runs against any saved
//! snapshot:
//!
//! ```sh
//! cargo run -p cyclesteal-bench --bin bench_diff -- \
//!     baseline/BENCH_dp.json BENCH_dp.json --threshold 0.10
//! ```
//!
//! Gated keys: the wall-clock solve timings `frontier_sweep_solve_s`,
//! `parallel_solve_s`, `compressed_solve_s` and `event_driven_solve_s`
//! (lower is better;
//! shared CI runners make these noisy, so treat a timing failure as a
//! prompt to re-run before believing it), plus `event_count` — the
//! event-driven build's loop-iteration count, which is fully
//! deterministic for a given code revision and therefore catches
//! algorithmic regressions with zero noise. A key missing on either
//! side is skipped with a note — quick mode intentionally omits the
//! dense-comparison fields, and new fields appear over time. A missing
//! baseline *file* passes with a note so the first run of a fresh
//! repository (or a fork without artifact history) is green.
//!
//! No JSON crate is vendored, so the parser is a deliberately minimal
//! `"key": number` scanner — exactly the shape `perf_dp` emits.

use std::process::ExitCode;

/// Keys gated on regression (lower is better), in report order. The
/// `_s` keys are wall-clock seconds; `event_count` is the deterministic
/// work counter of the event-driven build. `parallel_solve_s` is the
/// intra-level segmented solve at 4+ workers (its companion
/// `parallel_speedup` is a higher-is-better ratio and deliberately not
/// gated — the timing already is).
const GATED_KEYS: [&str; 5] = [
    "frontier_sweep_solve_s",
    "parallel_solve_s",
    "compressed_solve_s",
    "event_driven_solve_s",
    "event_count",
];

/// Extracts `"key": <number>` from a flat JSON document. Only the first
/// occurrence is considered; returns `None` when the key is absent or
/// its value is not a bare number.
fn get_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": true|false` from a flat JSON document.
fn get_bool(json: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start().strip_prefix(':')?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a fraction, e.g. 0.10");
                    std::process::exit(2);
                });
            }
            p => paths.push(p),
        }
        i += 1;
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json> [--threshold 0.10]");
        return ExitCode::from(2);
    };

    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_diff: cannot read fresh snapshot {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            println!("bench_diff: no baseline at {baseline_path} ({e}) — nothing to gate, passing");
            return ExitCode::SUCCESS;
        }
    };

    if get_bool(&baseline, "quick_mode") != get_bool(&fresh, "quick_mode") {
        println!(
            "bench_diff: warning — baseline and fresh snapshots ran in different modes \
             (quick vs full); timings compare single runs against medians"
        );
    }

    println!(
        "{:<26} {:>14} {:>14} {:>9}  verdict (threshold +{:.0}%)",
        "key",
        "baseline",
        "fresh",
        "delta",
        threshold * 100.0
    );
    let mut regressions = Vec::new();
    for key in GATED_KEYS {
        match (get_number(&baseline, key), get_number(&fresh, key)) {
            (Some(base), Some(new)) if base > 0.0 => {
                let delta = (new - base) / base;
                let verdict = if delta > threshold {
                    regressions.push((key, base, new, delta));
                    "REGRESSION"
                } else if delta < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{key:<26} {base:>14.6} {new:>14.6} {:>+8.1}%  {verdict}",
                    delta * 100.0
                );
            }
            (Some(base), Some(_)) => {
                // Present on both sides but no usable ratio: a zero or
                // negative baseline is a corrupt/truncated snapshot, not
                // an absent field — say so instead of gating on it.
                println!(
                    "{key:<26} {base:>14.6} {:>14} {:>9}  skipped (non-positive baseline)",
                    "—", "—"
                );
            }
            (b, f) => {
                let side = match (b, f) {
                    (None, None) => "both sides",
                    (None, _) => "baseline",
                    _ => "fresh snapshot",
                };
                println!(
                    "{key:<26} {:>14} {:>14} {:>9}  skipped (absent in {side})",
                    "—", "—", "—"
                );
            }
        }
    }

    if regressions.is_empty() {
        println!(
            "bench_diff: no gated regression beyond {:.0}%",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for (key, base, new, delta) in &regressions {
            eprintln!(
                "bench_diff: {key} regressed {:+.1}% ({base} -> {new})",
                delta * 100.0
            );
        }
        ExitCode::FAILURE
    }
}
