//! E3 — Proposition 4.1, measured exhaustively on the exact game value:
//! (a) `W^(p)[U]` nondecreasing in `U`; (b) nonincreasing in `p`;
//! (c) zero iff `U ≤ (p+1)c` (both directions, on the grid);
//! (d) `W^(0)[U] = U ⊖ c`.

use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::TableCache;

fn main() {
    let mut report = Report::new("prop41");
    report.line("E3 / Proposition 4.1 — exhaustive grid verification");
    let q = 8u32;
    let max_u = 512.0;
    let p_max = 6u32;
    let table = TableCache::global().get(secs(C), q, secs(max_u), p_max);
    let n = table.max_ticks();
    report.line(format!(
        "grid: {} states per level, p ≤ {p_max} (resolution c/{q}, U/c ≤ {max_u})",
        n + 1
    ));

    let mut violations_a = 0u64;
    let mut violations_b = 0u64;
    for p in 0..=p_max {
        for l in 1..=n {
            if table.value_ticks(p, l) < table.value_ticks(p, l - 1) {
                violations_a += 1;
            }
            if p > 0 && table.value_ticks(p, l) > table.value_ticks(p - 1, l) {
                violations_b += 1;
            }
        }
    }
    report.line(format!(
        "(a) monotone in U: {} violations over {} comparisons",
        violations_a,
        (p_max as i64 + 1) * n
    ));
    report.line(format!(
        "(b) antitone in p: {} violations over {} comparisons",
        violations_b,
        p_max as i64 * n
    ));
    assert_eq!(violations_a + violations_b, 0);

    report.line("(c) zero-work region boundaries (ticks, threshold = (p+1)·Q):");
    for p in 0..=p_max {
        // First lifespan with positive value.
        let mut first_positive = None;
        for l in 0..=n {
            if table.value_ticks(p, l) > 0 {
                first_positive = Some(l);
                break;
            }
        }
        let threshold = (p as i64 + 1) * q as i64;
        let fp = first_positive.expect("value becomes positive");
        report.line(format!(
            "    p = {p}: W > 0 from {fp} ticks; (p+1)c = {threshold} ticks"
        ));
        assert!(fp > threshold, "positive value inside the hopeless region");
        // The continuous threshold is sharp: on the grid the first positive
        // state appears within (p+1) extra ticks (one per surviving period).
        assert!(
            fp <= threshold + p as i64 + 1,
            "zero region extends past the sharp threshold"
        );
    }

    let mut d_err = Work::ZERO;
    for l in 0..=n {
        let u = table.grid().to_time(l);
        d_err = d_err.max((table.value(0, u) - w0(u, secs(C))).abs());
    }
    report.line(format!("(d) max |W^(0) − (U ⊖ c)| over the grid = {d_err}"));
    assert_eq!(d_err, Work::ZERO);

    report.line("");
    report.line("Proposition 4.1 holds exactly on the solved grid.");
}
