//! E2 — regenerates **Table 2**: "Parameter values for the case p = 1",
//! comparing the exactly optimal `S_opt^(1)[U]` against the adaptive
//! guideline's episode `S_a^(1)[U]`, column by column:
//!
//! | paper row | paper's approximate value (S_opt) | this bench |
//! |---|---|---|
//! | `m^(1)[U]` | `√(2U/c − 7/4) − 1/2` | exact eq. (5.1) + measured |
//! | `λ` | `∈ (0,1]` | exact |
//! | `t_k` | `√(2cU) − kc` | measured `t_1` |
//! | `t_m = t_{m−1}` | `3c/2` | measured |
//! | `W^(1)[U]` | `U − √(2cU) − c/2` | exact, + DP cross-check |

use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_core::schedules::adaptive::paper_period_count;
use cyclesteal_dp::{evaluate_policy, EvalOptions, TableCache};

fn main() {
    let mut report = Report::new("table2");
    report.line("E2 / Table 2 — parameter values for the case p = 1 (c = 1)");
    report.line("");

    // One DP + one policy evaluation cover every U below the cap; larger
    // U columns use the closed forms (which the capped columns validate).
    let dp_cap = 20_000.0;
    let table = TableCache::global().get(secs(C), 16, secs(dp_cap), 1);
    let guideline = AdaptiveGuideline::default();
    let ga = evaluate_policy(
        &guideline,
        secs(C),
        16,
        secs(dp_cap),
        1,
        EvalOptions::default(),
    )
    .unwrap();

    report.line(format!(
        "{:>10} | {:>26} | {:>26}",
        "", "S_opt^(1)[U]  (§5.2)", "S_a^(1)[U]  (§3.2)"
    ));
    report.line(format!(
        "{:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "U/c", "m", "t_1", "W^(1)", "m", "t_1", "W(S_a)"
    ));
    for &u in &[100.0, 1_000.0, 10_000.0, 100_000.0] {
        let uu = secs(u);
        // --- optimal side ---
        let m_opt = m1_opt(uu, secs(C));
        let s_opt = optimal_p1_schedule(uu, secs(C)).unwrap();
        let w_opt = w1_exact(uu, secs(C));
        // --- guideline side ---
        let opp = Opportunity::from_units(u, C, 1);
        let s_a = guideline.episode(&opp).unwrap();
        let w_a = if u <= dp_cap {
            ga.value(1, uu)
        } else {
            // Outside the DP cap report the Thm 5.1 leading prediction.
            thm51_lower_bound(&opp, 0.0, 0.0)
        };
        report.line(format!(
            "{:>10} | {:>8} {:>8.2} {:>8.1} | {:>8} {:>8.2} {:>8.1}",
            u,
            m_opt,
            s_opt.period(0),
            w_opt,
            s_a.len(),
            s_a.period(0),
            w_a,
        ));
    }
    report.line("");

    // --- Paper's approximate rows, checked ------------------------------
    report.line("Paper's approximations vs exact values:");
    report.line(format!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "U/c", "m approx", "m exact", "lambda", "t_m (=3c/2)", "W approx", "W exact", "DP check"
    ));
    for &u in &[100.0, 1_000.0, 10_000.0, 100_000.0] {
        let uu = secs(u);
        let m_exact = m1_opt(uu, secs(C));
        let m_approx = m1_approx_row(u);
        let lambda = lambda1_opt(uu, secs(C), m_exact);
        let s = optimal_p1_schedule(uu, secs(C)).unwrap();
        let t_m = s.period(s.len() - 1);
        let w_apx = w1_approx(uu, secs(C));
        let w_ex = w1_exact(uu, secs(C));
        let dp_check = if u <= dp_cap {
            format!("{:.1}", table.value(1, uu))
        } else {
            "—".to_string()
        };
        report.line(format!(
            "{:>10} {:>12.2} {:>12} {:>10.3} {:>12.3} {:>12.1} {:>12.1} {:>10}",
            u, m_approx, m_exact, lambda, t_m, w_apx, w_ex, dp_check
        ));
        // Machine checks on every Table 2 claim:
        assert!((m_approx - m_exact as f64).abs() <= 1.0, "m row at U={u}");
        assert!(lambda > 0.0 && lambda <= 1.0 + 1e-9, "λ row at U={u}");
        assert!((t_m.get() - 1.5).abs() <= 0.5, "t_m row at U={u}");
        assert!((w_apx - w_ex).abs() <= secs(1.0), "W row at U={u}");
        if u <= dp_cap {
            let dpw = table.value(1, uu);
            assert!(
                (dpw - w_ex).abs() <= secs(0.5),
                "DP cross-check at U={u}: {dpw} vs {w_ex}"
            );
        }
    }
    report.line("");

    // --- S_a^(1) literal columns -----------------------------------------
    report.line("S_a^(1) columns (paper literal vs this implementation):");
    for &u in &[1_000.0, 100_000.0] {
        let opp = Opportunity::from_units(u, C, 1);
        let s_a = AdaptiveGuideline::default().episode(&opp).unwrap();
        let paper_m = ((2.0 * u / C).sqrt() + 2.0).floor();
        let reconstructed_m = paper_period_count(&opp);
        report.line(format!(
            "  U/c = {u}: m paper ⌊√(2U/c)+2⌋ = {paper_m}, reconstructed formula = {reconstructed_m}, built = {}",
            s_a.len()
        ));
        // t_k row: √(2cU) − (k − 7/2)c at k = 1 says t_1 ≈ √(2cU) + 2.5c.
        let literal_t1 = (2.0 * C * u).sqrt() + 2.5 * C;
        report.line(format!(
            "        t_1 literal = {literal_t1:.2}, built = {:.2}; t_m built = {:.2} (3c/2 = 1.5)",
            s_a.period(0),
            s_a.period(s_a.len() - 1)
        ));
        assert!((s_a.len() as f64 - paper_m).abs() <= 3.0);
    }
    report.line("");
    report.line("Table 2 reproduced: every row within its stated approximation band.");
}

/// The paper's approximate `m^(1)[U] = √(2U/c − 7/4) − 1/2` (pre-ceiling).
fn m1_approx_row(u: f64) -> f64 {
    (2.0 * u / C - 1.75).sqrt() - 0.5
}
