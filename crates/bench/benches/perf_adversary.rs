//! P3 — adversary-side costs: the exact non-adaptive worst case
//! (`O(m log m)` over the schedule length) and full game playouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_adversary::nonadaptive::worst_case;
use cyclesteal_adversary::{game::run_game, OptimalAdversary};
use cyclesteal_core::prelude::*;
use std::hint::black_box;

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonadaptive_worst_case");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    for m in [1_000usize, 10_000, 100_000] {
        // m equal periods; p = 8.
        let u = m as f64 * 10.0;
        let sched = EpisodeSchedule::equal(secs(u), m).unwrap();
        let run = NonAdaptiveRun::new(sched, secs(1.0), secs(u), 8).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &run, |b, r| {
            b.iter(|| worst_case(black_box(r)))
        });
    }
    group.finish();
}

fn bench_game_playout(c: &mut Criterion) {
    let mut group = c.benchmark_group("game_playout");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    let oracle = ClosedFormOracle::new(secs(1.0));
    for &u in &[1_000.0, 100_000.0] {
        let opp = Opportunity::from_units(u, 1.0, 1);
        group.bench_with_input(
            BenchmarkId::new("optimal_p1_vs_oracle", u as u64),
            &opp,
            |b, o| {
                b.iter(|| {
                    let mut adv = OptimalAdversary::new(oracle);
                    run_game(&OptimalP1Policy, &mut adv, black_box(o)).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worst_case, bench_game_playout);
criterion_main!(benches);
