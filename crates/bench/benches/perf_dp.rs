//! P1 — performance of the exact game solver: resolution ablation
//! (`Q ∈ {4, 16, 64}`), the bisection-vs-linear-scan inner loop, and the
//! policy evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::{evaluate_policy, EvalOptions, SolveOptions, ValueTable};
use std::hint::black_box;

fn bench_solve_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_solve_resolution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                ValueTable::solve(
                    secs(1.0),
                    q,
                    secs(512.0),
                    black_box(3),
                    SolveOptions {
                        keep_policy: false,
                        bisection: true,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_inner_loop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, bisection) in [("bisection", true), ("linear_scan", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ValueTable::solve(
                    secs(1.0),
                    16,
                    secs(256.0),
                    black_box(3),
                    SolveOptions {
                        keep_policy: false,
                        bisection,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_policy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_policy_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("adaptive_guideline_p3_u512_q8", |b| {
        b.iter(|| {
            evaluate_policy(
                &AdaptiveGuideline::default(),
                secs(1.0),
                8,
                secs(512.0),
                black_box(3),
                EvalOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let table = ValueTable::solve(secs(1.0), 32, secs(1024.0), 3, SolveOptions::default());
    c.bench_function("dp_value_query_interpolated", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.37) % 1024.0;
            black_box(table.value(3, secs(x)))
        })
    });
    c.bench_function("dp_episode_reconstruction", |b| {
        b.iter(|| table.episode(black_box(3), secs(1024.0)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_solve_resolution,
    bench_inner_loop,
    bench_policy_eval,
    bench_queries
);
criterion_main!(benches);
