//! P1 — performance of the exact game solver.
//!
//! Covers the resolution ablation (`Q ∈ {4, 16, 64}`), the three dense
//! inner loops (frontier sweep vs bisection vs linear scan), the
//! breakpoint-compressed solver (tick-walking and event-driven), cached
//! sweeps, the policy evaluators and query paths — and emits the
//! headline numbers to `BENCH_dp.json` at the workspace root. Four
//! acceptance points: at `(Q=32, p=16, L=10⁶ ticks)` the frontier sweep
//! must beat bisection ≥ 3×, the intra-level parallel solve must beat
//! the sequential sweep ≥ 1.5× at 4+ workers, and the compressed table
//! must hold the same function in ≤ 1/10 the bytes; at
//! `(Q=32, p=16, L=10⁹ ticks)` the event-driven build must finish in
//! under a second and the run-backed (second-order) build must store
//! ≤ 0.2× the flat list's breakpoint descriptors
//! (`run_compressed_breakpoints` vs `event_driven_breakpoints`).
//!
//! Quick mode (`CRITERION_QUICK=1` or `--quick`) is the CI smoke
//! configuration: single-run measurements (`runs_per_measurement: 1`,
//! stamped `"quick_mode": true`) and the 10⁶-tick *dense comparison*
//! measurements — the bisection baseline and the dense-vs-compressed
//! memory rebuild — are skipped so the job finishes in seconds; their
//! JSON fields are simply absent (`bench_diff` skips fields missing on
//! either side).
//!
//! ```sh
//! cargo bench -p cyclesteal-bench --bench perf_dp            # full
//! CRITERION_QUICK=1 cargo bench -p cyclesteal-bench --bench perf_dp  # CI smoke
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::{
    evaluate_policy, evaluate_policy_compressed, CompressedEvalOptions, CompressedTable,
    EvalOptions, InnerLoop, RowRepr, SolveConfig, SolveOptions, TableCache, ValueTable,
};
use std::hint::black_box;
use std::time::Instant;

/// The acceptance-criteria configuration: Q ticks/setup, interrupt
/// budget, lifespan in ticks for the dense-vs-compressed point, and the
/// deep lifespan only the event-driven build can touch.
const ACCEPT_Q: u32 = 32;
const ACCEPT_P: u32 = 16;
const ACCEPT_TICKS: i64 = 1_000_000;
const ACCEPT_EVENT_TICKS: i64 = 1_000_000_000;

fn accept_lifespan() -> Time {
    // L ticks at Q ticks per unit-setup: U = L/Q time units.
    secs(ACCEPT_TICKS as f64 / ACCEPT_Q as f64)
}

fn value_only(inner: InnerLoop) -> SolveOptions {
    SolveOptions {
        keep_policy: false,
        inner,
        ..SolveOptions::default()
    }
}

/// The intra-level parallel configuration: `threads` workers sweep
/// anchor-segmented l-ranges of each level (bit-identical output).
fn value_only_parallel(threads: usize) -> SolveOptions {
    SolveOptions {
        threads,
        ..value_only(InnerLoop::FrontierSweep)
    }
}

fn bench_solve_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_solve_resolution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                ValueTable::solve(
                    secs(1.0),
                    q,
                    secs(512.0),
                    black_box(3),
                    value_only(InnerLoop::FrontierSweep),
                )
            })
        });
    }
    group.finish();
}

fn bench_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_inner_loop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, inner) in [
        ("frontier_sweep", InnerLoop::FrontierSweep),
        ("bisection", InnerLoop::Bisection),
        ("linear_scan", InnerLoop::LinearScan),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ValueTable::solve(secs(1.0), 16, secs(256.0), black_box(3), value_only(inner))
            })
        });
    }
    // The segmented intra-level sweep at an explicit 4 workers — the
    // ablation point the acceptance report measures at p=16.
    group.bench_function("parallel_sweep_t4", |b| {
        b.iter(|| {
            ValueTable::solve(
                secs(1.0),
                16,
                secs(256.0),
                black_box(3),
                value_only_parallel(4),
            )
        })
    });
    group.finish();
}

fn bench_compressed_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_compressed_solve");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("q16_u512_p3", |b| {
        b.iter(|| CompressedTable::solve(secs(1.0), 16, secs(512.0), black_box(3)))
    });
    group.bench_function("event_q16_u512_p3", |b| {
        b.iter(|| {
            CompressedTable::solve_with(
                secs(1.0),
                16,
                secs(512.0),
                black_box(3),
                value_only(InnerLoop::EventDriven),
            )
        })
    });
    // The run-skipping regime only shows at depth: 10⁷ ticks, where the
    // tick walk pays 10⁷ steps per level and the event build ~k.
    group.bench_function("event_q16_u625000_p3", |b| {
        b.iter(|| {
            CompressedTable::solve_with(
                secs(1.0),
                16,
                secs(625_000.0),
                black_box(3),
                value_only(InnerLoop::EventDriven),
            )
        })
    });
    // Same deep build, stored second-order (arithmetic runs): measures
    // the compression pass the run-backed representation adds.
    group.bench_function("event_runs_q16_u625000_p3", |b| {
        b.iter(|| {
            CompressedTable::solve_with(
                secs(1.0),
                16,
                secs(625_000.0),
                black_box(3),
                SolveOptions {
                    repr: RowRepr::Runs,
                    ..value_only(InnerLoop::EventDriven)
                },
            )
        })
    });
    group.finish();
}

fn bench_compressed_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_compressed_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    // Guideline scoring on a 10⁶-tick grid through the knot-compressed
    // evaluator — the dense evaluator at this size is the policy_eval
    // group's 4096-tick bench scaled by ~250×.
    group.bench_function("adaptive_guideline_p2_u125000_q8", |b| {
        b.iter(|| {
            evaluate_policy_compressed(
                &AdaptiveGuideline::default(),
                secs(1.0),
                8,
                secs(125_000.0),
                black_box(2),
                CompressedEvalOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_cached_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_cached_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    // 24 configs, 3 distinct keys: the cache turns 24 solves into 3,
    // fanned out over the par workers.
    let configs: Vec<SolveConfig> = (0..24)
        .map(|i| SolveConfig {
            setup: secs(1.0),
            ticks_per_setup: 8,
            max_lifespan: secs(64.0 * (1 + i % 8) as f64),
            max_interrupts: 1 + (i % 3) as u32,
        })
        .collect();
    group.bench_function("solve_many_24cfg_3keys", |b| {
        b.iter(|| {
            let cache = TableCache::with_options(value_only(InnerLoop::FrontierSweep));
            cache.solve_many(black_box(&configs))
        })
    });
    group.finish();
}

fn bench_policy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_policy_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("adaptive_guideline_p3_u512_q8", |b| {
        b.iter(|| {
            evaluate_policy(
                &AdaptiveGuideline::default(),
                secs(1.0),
                8,
                secs(512.0),
                black_box(3),
                EvalOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let table = ValueTable::solve(secs(1.0), 32, secs(1024.0), 3, SolveOptions::default());
    let compressed = CompressedTable::solve(secs(1.0), 32, secs(1024.0), 3);
    c.bench_function("dp_value_query_interpolated", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.37) % 1024.0;
            black_box(table.value(3, secs(x)))
        })
    });
    c.bench_function("dp_value_query_compressed", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.37) % 1024.0;
            black_box(compressed.value(3, secs(x)))
        })
    });
    c.bench_function("dp_episode_reconstruction", |b| {
        b.iter(|| table.episode(black_box(3), secs(1024.0)).unwrap())
    });
    c.bench_function("dp_episode_reconstruction_compressed", |b| {
        b.iter(|| compressed.episode(black_box(3), secs(1024.0)).unwrap())
    });
}

/// Median wall-clock seconds of `runs` executions of `f`, after one
/// untimed warm-up run (the first solve at this scale pays the OS
/// page-fault cost of mapping the arena; later ones reuse the pages).
/// The last run's output is returned so callers can read stats off it
/// without paying for yet another solve.
fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    black_box(f());
    let mut last = None;
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            last = Some(black_box(f()));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (
        times[times.len() / 2],
        last.expect("runs >= 1 timed executions"),
    )
}

/// The acceptance-criteria measurement, reported on stdout and written
/// to `BENCH_dp.json` at the workspace root. Honors the CLI name filter
/// under the id `dp_acceptance_report` — `cargo bench ... -- dp_value`
/// skips the heavyweight p=16 solves (and the JSON rewrite).
///
/// Quick mode stamps `"quick_mode": true` with `runs_per_measurement: 1`
/// and skips the 10⁶-tick dense comparison — the bisection baseline and
/// the dense-memory rebuild — whose fields are then absent from the
/// JSON; the frontier-sweep, parallel, compressed and event-driven
/// timings are always emitted, so `bench_diff` can gate on them in
/// every mode.
fn acceptance_report(c: &mut Criterion) {
    if !c.filter_matches("dp_acceptance_report") {
        return;
    }
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--quick");
    let runs = if quick { 1 } else { 3 };
    let u = accept_lifespan();
    let deep_u = secs(ACCEPT_EVENT_TICKS as f64 / ACCEPT_Q as f64);

    let (sweep_s, _) = time_median(runs, || {
        ValueTable::solve(
            secs(1.0),
            ACCEPT_Q,
            u,
            ACCEPT_P,
            value_only(InnerLoop::FrontierSweep),
        )
    });
    // The intra-level parallel solve, at 4+ workers (the acceptance
    // point asks for ≥ 1.5× over the sequential sweep). Bit-identical
    // output; the speedup comes from the anchor-segmented fan-out plus
    // the skeleton-first formulation of each level.
    let parallel_threads = cyclesteal_par::default_threads().max(4);
    let (parallel_s, _) = time_median(runs, || {
        ValueTable::solve(
            secs(1.0),
            ACCEPT_Q,
            u,
            ACCEPT_P,
            value_only_parallel(parallel_threads),
        )
    });
    let parallel_speedup = sweep_s / parallel_s;
    let (compressed_s, _) = time_median(runs, || {
        CompressedTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P)
    });
    // The deep point: 1000× the dense lifespan, event-driven only; the
    // last timed build doubles as the stats source.
    let (event_s, deep) = time_median(runs, || {
        CompressedTable::solve_with(
            secs(1.0),
            ACCEPT_Q,
            deep_u,
            ACCEPT_P,
            value_only(InnerLoop::EventDriven),
        )
    });
    let event_count = deep.events();
    let deep_breakpoints: usize = (0..=ACCEPT_P).map(|p| deep.breakpoints(p)).sum();
    let deep_flat_bytes = deep.memory_bytes();
    // Same deep build, run-backed: second-order compression at the
    // acceptance point. The build loop is identical (same events), only
    // the stored representation changes — the acceptance criterion is
    // run_compressed_breakpoints ≤ 0.2× event_driven_breakpoints.
    let (run_s, deep_runs) = time_median(runs, || {
        CompressedTable::solve_with(
            secs(1.0),
            ACCEPT_Q,
            deep_u,
            ACCEPT_P,
            SolveOptions {
                repr: RowRepr::Runs,
                ..value_only(InnerLoop::EventDriven)
            },
        )
    });
    let run_breakpoints: usize = (0..=ACCEPT_P)
        .map(|p| deep_runs.stored_breakpoints(p))
        .sum();
    let run_bytes = deep_runs.memory_bytes();
    let run_k_ratio = run_breakpoints as f64 / deep_breakpoints as f64;
    let run_mem_ratio = run_bytes as f64 / deep_flat_bytes as f64;

    // Warm start: snapshot the run-backed deep table once, then time a
    // fresh cache warming from disk *and serving its first query* — the
    // restart path of the serving layer. Acceptance: ≥ 10× faster than
    // the cold run-compressed solve it replaces.
    use cyclesteal_store::CacheSnapshotExt;
    let snap_dir =
        std::env::temp_dir().join(format!("cyclesteal-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    {
        let cache = TableCache::new();
        cache.admit_compressed(std::sync::Arc::new(deep_runs.clone()));
        cache
            .snapshot_to_dir(&snap_dir)
            .expect("write warm-start snapshot");
    }
    let (warm_s, _) = time_median(runs, || {
        let cache = TableCache::new();
        let report = cache.warm_from_dir(&snap_dir).expect("read snapshot dir");
        assert_eq!(report.loaded, 1, "snapshot must load");
        let table = cache.get_compressed(secs(1.0), ACCEPT_Q, deep_u, ACCEPT_P);
        assert_eq!(cache.stats().misses, 0, "warm start must not solve");
        table.value(ACCEPT_P, deep_u)
    });
    let _ = std::fs::remove_dir_all(&snap_dir);
    let warm_speedup = run_s / warm_s;

    // Broker throughput: batched guarantee queries against a warmed
    // in-process broker, from 4 client threads.
    let (serve_qps, serve_p99_us) = {
        use cyclesteal_serve::{Broker, BrokerConfig, GuaranteeQuery};
        let broker = std::sync::Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let queries: Vec<GuaranteeQuery> = (0..64)
            .map(|i| GuaranteeQuery {
                setup: secs(1.0),
                ticks_per_setup: 8,
                interrupts: 1 + (i % 3),
                lifespan: secs(8.0 * (1 + i % 64) as f64),
            })
            .collect();
        let _ = broker.query_batch(&queries).unwrap(); // one solve, warm
        let batches_per_thread = if quick { 250 } else { 1000 };
        let threads = 4;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let broker = broker.clone();
                let queries = &queries;
                scope.spawn(move || {
                    for _ in 0..batches_per_thread {
                        black_box(broker.query_batch(black_box(queries)).unwrap());
                    }
                });
            }
        });
        let total_queries = (threads * batches_per_thread * queries.len()) as f64;
        let qps = total_queries / start.elapsed().as_secs_f64();
        // Tail latency of the same batches, from the broker's own
        // per-endpoint digest (the warm-up batch is included — one
        // cache-hit batch among thousands cannot move the p99).
        let p99_us = broker
            .stats()
            .endpoints
            .iter()
            .find(|e| e.endpoint == "inproc")
            .map(|e| e.p99_us)
            .unwrap_or(0);
        (qps, p99_us)
    };

    // The same warmed workload with full observability on: solver phase
    // profiling enabled and every batch traced (nonzero trace ids, so
    // every request records pipeline spans into the journal). Gated in
    // bench_diff at serve_qps_instrumented ≥ 0.9 × serve_qps within the
    // same run — the instrumentation overhead budget is 10%.
    let serve_qps_instrumented = {
        use cyclesteal_serve::{Broker, BrokerConfig, GuaranteeQuery};
        let broker = std::sync::Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        broker.enable_profiling();
        let queries: Vec<GuaranteeQuery> = (0..64)
            .map(|i| GuaranteeQuery {
                setup: secs(1.0),
                ticks_per_setup: 8,
                interrupts: 1 + (i % 3),
                lifespan: secs(8.0 * (1 + i % 64) as f64),
            })
            .collect();
        let _ = broker.query_batch(&queries).unwrap(); // one solve, warm
        let batches_per_thread = if quick { 250 } else { 1000 };
        let threads = 4;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let broker = broker.clone();
                let queries = &queries;
                scope.spawn(move || {
                    for b in 0..batches_per_thread {
                        let trace = 1 + (t * batches_per_thread + b) as u64;
                        black_box(
                            broker
                                .query_batch_traced("inproc", black_box(queries), None, trace)
                                .unwrap(),
                        );
                    }
                });
            }
        });
        let total_queries = (threads * batches_per_thread * queries.len()) as f64;
        total_queries / start.elapsed().as_secs_f64()
    };

    // The same warmed workload at 64 concurrent client threads: the
    // concurrency acceptance point for the readiness-loop serving
    // stack. Gated higher-is-better in bench_diff; the issue's bar is
    // staying within 2× of the 4-client number with a flat p99.
    let (serve_qps_64c, serve_p99_64c_us) = {
        use cyclesteal_serve::{Broker, BrokerConfig, GuaranteeQuery};
        let broker = std::sync::Arc::new(Broker::new(BrokerConfig::default()).unwrap());
        let queries: Vec<GuaranteeQuery> = (0..64)
            .map(|i| GuaranteeQuery {
                setup: secs(1.0),
                ticks_per_setup: 8,
                interrupts: 1 + (i % 3),
                lifespan: secs(8.0 * (1 + i % 64) as f64),
            })
            .collect();
        let _ = broker.query_batch(&queries).unwrap(); // one solve, warm
        let batches_per_thread = if quick { 25 } else { 100 };
        let threads = 64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let broker = broker.clone();
                let queries = &queries;
                scope.spawn(move || {
                    for _ in 0..batches_per_thread {
                        black_box(broker.query_batch(black_box(queries)).unwrap());
                    }
                });
            }
        });
        let total_queries = (threads * batches_per_thread * queries.len()) as f64;
        let qps = total_queries / start.elapsed().as_secs_f64();
        let p99_us = broker
            .stats()
            .endpoints
            .iter()
            .find(|e| e.endpoint == "inproc")
            .map(|e| e.p99_us)
            .unwrap_or(0);
        (qps, p99_us)
    };

    // Population-scale batch simulation: 10⁶ seeded episodes of the
    // table-driven optimal borrower against the Poisson owner, on the
    // struct-of-arrays BatchSim. The same batch is run once at a single
    // worker and asserted bit-identical to the threaded run (the
    // acceptance criterion), then timed threaded.
    let (sim_episodes_per_s, sim_batch_episodes, sim_batch_threads) = {
        use now_sim::{BatchAdversary, BatchConfig, BatchSim};
        let sim_l_ticks = 4_096i64;
        let sim_p = 3u32;
        let sim_table = std::sync::Arc::new(CompressedTable::solve_with(
            secs(1.0),
            ACCEPT_Q,
            secs(sim_l_ticks as f64 / ACCEPT_Q as f64),
            sim_p,
            SolveOptions {
                repr: RowRepr::Runs,
                ..value_only(InnerLoop::EventDriven)
            },
        ));
        let episodes = 1_000_000usize;
        let mk = |threads: usize| {
            BatchSim::new(BatchConfig {
                table: sim_table.clone(),
                lifespan_ticks: sim_l_ticks,
                interrupts: sim_p,
                episodes,
                seed: 0xBA7C4,
                adversary: BatchAdversary::Poisson {
                    mean_gap_ticks: 256.0,
                },
                block: 0,
                threads,
            })
            .run()
        };
        let (sim_s, threaded) = time_median(runs, || mk(0));
        let sequential = mk(1);
        assert_eq!(
            sequential, threaded,
            "batch reports must be bit-identical at 1 vs N threads"
        );
        assert_eq!(
            threaded.violations, 0,
            "guarantee violated at the bench point"
        );
        (
            episodes as f64 / sim_s,
            episodes,
            cyclesteal_par::default_threads(),
        )
    };

    println!("\n=== perf_dp acceptance (Q={ACCEPT_Q}, p={ACCEPT_P}, L={ACCEPT_TICKS} ticks) ===");
    println!("frontier sweep solve : {sweep_s:.3} s");
    println!(
        "parallel solve       : {parallel_s:.3} s at {parallel_threads} threads ({parallel_speedup:.2}× vs sequential sweep, target ≥ 1.5×)"
    );
    println!("compressed solve     : {compressed_s:.3} s");
    println!(
        "event-driven solve   : {event_s:.3} s at L={ACCEPT_EVENT_TICKS} ticks ({event_count} events, {deep_breakpoints} breakpoints; target < 1 s)"
    );
    println!(
        "run-compressed solve : {run_s:.3} s — {run_breakpoints} stored descriptors ({run_k_ratio:.4}× of flat, target ≤ 0.2×), {run_bytes} B ({run_mem_ratio:.3}× of flat)"
    );
    println!(
        "warm start           : {warm_s:.3} s snapshot-load + first query ({warm_speedup:.1}× vs cold run-compressed solve, target ≥ 10×)"
    );
    println!(
        "broker throughput    : {serve_qps:.0} queries/s (batched, 4 client threads), batch p99 {serve_p99_us} µs"
    );
    println!(
        "broker instrumented  : {serve_qps_instrumented:.0} queries/s with tracing + phase profiling on ({:.1}% of baseline, floor 90%)",
        100.0 * serve_qps_instrumented / serve_qps
    );
    println!(
        "broker at 64 clients : {serve_qps_64c:.0} queries/s (batched, 64 client threads), batch p99 {serve_p99_64c_us} µs"
    );
    println!(
        "batch simulation     : {sim_episodes_per_s:.0} episodes/s ({sim_batch_episodes} seeded episodes at {sim_batch_threads} threads, bit-identical to 1 thread)"
    );

    let mut fields = vec![
        format!("\"quick_mode\": {quick}"),
        format!("\"runs_per_measurement\": {runs}"),
        format!("\"frontier_sweep_solve_s\": {sweep_s:.6}"),
        format!("\"parallel_solve_s\": {parallel_s:.6}"),
        format!("\"parallel_speedup\": {parallel_speedup:.3}"),
        format!("\"parallel_threads\": {parallel_threads}"),
        format!("\"compressed_solve_s\": {compressed_s:.6}"),
        format!("\"event_driven_solve_s\": {event_s:.6}"),
        format!("\"event_driven_lifespan_ticks\": {ACCEPT_EVENT_TICKS}"),
        format!("\"event_count\": {event_count}"),
        format!("\"event_driven_breakpoints\": {deep_breakpoints}"),
        format!("\"run_compressed_solve_s\": {run_s:.6}"),
        format!("\"run_compressed_breakpoints\": {run_breakpoints}"),
        format!("\"run_memory_bytes\": {run_bytes}"),
        format!("\"warm_start_s\": {warm_s:.6}"),
        format!("\"warm_start_speedup\": {warm_speedup:.3}"),
        format!("\"serve_qps\": {serve_qps:.1}"),
        format!("\"serve_p99_us\": {serve_p99_us}"),
        format!("\"serve_qps_instrumented\": {serve_qps_instrumented:.1}"),
        format!("\"serve_qps_64c\": {serve_qps_64c:.1}"),
        format!("\"serve_p99_64c_us\": {serve_p99_64c_us}"),
        format!("\"sim_episodes_per_s\": {sim_episodes_per_s:.1}"),
        format!("\"sim_batch_episodes\": {sim_batch_episodes}"),
        format!("\"sim_batch_threads\": {sim_batch_threads}"),
    ];

    if quick {
        println!("quick mode: skipping the 10⁶-tick dense comparison (bisection + memory rebuild)");
    } else {
        let (bisect_s, _) = time_median(runs, || {
            ValueTable::solve(
                secs(1.0),
                ACCEPT_Q,
                u,
                ACCEPT_P,
                value_only(InnerLoop::Bisection),
            )
        });
        let dense = ValueTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P, SolveOptions::default());
        let compressed = CompressedTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P);
        let dense_bytes = dense.memory_bytes();
        let compressed_bytes = compressed.memory_bytes();
        let breakpoints: usize = (0..=ACCEPT_P).map(|p| compressed.breakpoints(p)).sum();
        let speedup = bisect_s / sweep_s;
        let mem_ratio = dense_bytes as f64 / compressed_bytes as f64;
        println!(
            "bisection solve      : {bisect_s:.3} s   (sweep speedup {speedup:.2}×, target ≥ 3×)"
        );
        println!("dense memory         : {dense_bytes} B (values + argmax)");
        println!(
            "compressed memory    : {compressed_bytes} B across {breakpoints} breakpoints ({mem_ratio:.1}× smaller, target ≥ 10×)"
        );
        fields.extend([
            format!("\"bisection_solve_s\": {bisect_s:.6}"),
            format!("\"sweep_vs_bisection_speedup\": {speedup:.3}"),
            format!("\"dense_memory_bytes\": {dense_bytes}"),
            format!("\"compressed_memory_bytes\": {compressed_bytes}"),
            format!("\"compressed_breakpoints\": {breakpoints}"),
            format!("\"memory_ratio\": {mem_ratio:.3}"),
        ]);
    }

    let json = format!(
        "{{\n  \"bench\": \"perf_dp\",\n  \"config\": {{ \"ticks_per_setup\": {ACCEPT_Q}, \"max_interrupts\": {ACCEPT_P}, \"lifespan_ticks\": {ACCEPT_TICKS} }},\n  {}\n}}\n",
        fields.join(",\n  ")
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp.json");
    std::fs::write(&path, json).expect("write BENCH_dp.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_solve_resolution,
    bench_inner_loop,
    bench_compressed_solve,
    bench_compressed_eval,
    bench_cached_sweep,
    bench_policy_eval,
    bench_queries,
    acceptance_report
);
criterion_main!(benches);
