//! P1 — performance of the exact game solver.
//!
//! Covers the resolution ablation (`Q ∈ {4, 16, 64}`), the three inner
//! loops (frontier sweep vs bisection vs linear scan), the
//! breakpoint-compressed solver, cached sweeps, the policy evaluator and
//! query paths — and emits the headline numbers to `BENCH_dp.json` at the
//! workspace root: the acceptance point is `(Q=32, p=16, L=10⁶ ticks)`,
//! where the frontier sweep must beat bisection ≥ 3× and the compressed
//! table must hold the same function in ≤ 1/10 the bytes.
//!
//! ```sh
//! cargo bench -p cyclesteal-bench --bench perf_dp            # full
//! CRITERION_QUICK=1 cargo bench -p cyclesteal-bench --bench perf_dp  # CI smoke
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::{
    evaluate_policy, CompressedTable, EvalOptions, InnerLoop, SolveConfig, SolveOptions,
    TableCache, ValueTable,
};
use std::hint::black_box;
use std::time::Instant;

/// The acceptance-criteria configuration: Q ticks/setup, interrupt
/// budget, lifespan in ticks.
const ACCEPT_Q: u32 = 32;
const ACCEPT_P: u32 = 16;
const ACCEPT_TICKS: i64 = 1_000_000;

fn accept_lifespan() -> Time {
    // L ticks at Q ticks per unit-setup: U = L/Q time units.
    secs(ACCEPT_TICKS as f64 / ACCEPT_Q as f64)
}

fn value_only(inner: InnerLoop) -> SolveOptions {
    SolveOptions {
        keep_policy: false,
        inner,
    }
}

fn bench_solve_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_solve_resolution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                ValueTable::solve(
                    secs(1.0),
                    q,
                    secs(512.0),
                    black_box(3),
                    value_only(InnerLoop::FrontierSweep),
                )
            })
        });
    }
    group.finish();
}

fn bench_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_inner_loop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, inner) in [
        ("frontier_sweep", InnerLoop::FrontierSweep),
        ("bisection", InnerLoop::Bisection),
        ("linear_scan", InnerLoop::LinearScan),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ValueTable::solve(secs(1.0), 16, secs(256.0), black_box(3), value_only(inner))
            })
        });
    }
    group.finish();
}

fn bench_compressed_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_compressed_solve");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("q16_u512_p3", |b| {
        b.iter(|| CompressedTable::solve(secs(1.0), 16, secs(512.0), black_box(3)))
    });
    group.finish();
}

fn bench_cached_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_cached_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    // 24 configs, 3 distinct keys: the cache turns 24 solves into 3,
    // fanned out over the par workers.
    let configs: Vec<SolveConfig> = (0..24)
        .map(|i| SolveConfig {
            setup: secs(1.0),
            ticks_per_setup: 8,
            max_lifespan: secs(64.0 * (1 + i % 8) as f64),
            max_interrupts: 1 + (i % 3) as u32,
        })
        .collect();
    group.bench_function("solve_many_24cfg_3keys", |b| {
        b.iter(|| {
            let cache = TableCache::with_options(value_only(InnerLoop::FrontierSweep));
            cache.solve_many(black_box(&configs))
        })
    });
    group.finish();
}

fn bench_policy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_policy_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("adaptive_guideline_p3_u512_q8", |b| {
        b.iter(|| {
            evaluate_policy(
                &AdaptiveGuideline::default(),
                secs(1.0),
                8,
                secs(512.0),
                black_box(3),
                EvalOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let table = ValueTable::solve(secs(1.0), 32, secs(1024.0), 3, SolveOptions::default());
    let compressed = CompressedTable::solve(secs(1.0), 32, secs(1024.0), 3);
    c.bench_function("dp_value_query_interpolated", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.37) % 1024.0;
            black_box(table.value(3, secs(x)))
        })
    });
    c.bench_function("dp_value_query_compressed", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.37) % 1024.0;
            black_box(compressed.value(3, secs(x)))
        })
    });
    c.bench_function("dp_episode_reconstruction", |b| {
        b.iter(|| table.episode(black_box(3), secs(1024.0)).unwrap())
    });
    c.bench_function("dp_episode_reconstruction_compressed", |b| {
        b.iter(|| compressed.episode(black_box(3), secs(1024.0)).unwrap())
    });
}

/// Median wall-clock seconds of `runs` executions of `f`, after one
/// untimed warm-up run (the first solve at this scale pays the OS
/// page-fault cost of mapping the arena; later ones reuse the pages).
fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The acceptance-criteria measurement, reported on stdout and written
/// to `BENCH_dp.json` at the workspace root. Honors the CLI name filter
/// under the id `dp_acceptance_report` — `cargo bench ... -- dp_value`
/// skips the heavyweight p=16/10⁶-tick solves (and the JSON rewrite).
fn acceptance_report(c: &mut Criterion) {
    if !c.filter_matches("dp_acceptance_report") {
        return;
    }
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--quick");
    let runs = if quick { 1 } else { 3 };
    let u = accept_lifespan();

    let sweep_s = time_median(runs, || {
        ValueTable::solve(
            secs(1.0),
            ACCEPT_Q,
            u,
            ACCEPT_P,
            value_only(InnerLoop::FrontierSweep),
        )
    });
    let bisect_s = time_median(runs, || {
        ValueTable::solve(
            secs(1.0),
            ACCEPT_Q,
            u,
            ACCEPT_P,
            value_only(InnerLoop::Bisection),
        )
    });
    let compressed_s = time_median(runs, || {
        CompressedTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P)
    });

    let dense = ValueTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P, SolveOptions::default());
    let compressed = CompressedTable::solve(secs(1.0), ACCEPT_Q, u, ACCEPT_P);
    let dense_bytes = dense.memory_bytes();
    let compressed_bytes = compressed.memory_bytes();
    let breakpoints: usize = (0..=ACCEPT_P).map(|p| compressed.breakpoints(p)).sum();

    let speedup = bisect_s / sweep_s;
    let mem_ratio = dense_bytes as f64 / compressed_bytes as f64;

    println!("\n=== perf_dp acceptance (Q={ACCEPT_Q}, p={ACCEPT_P}, L={ACCEPT_TICKS} ticks) ===");
    println!("frontier sweep solve : {sweep_s:.3} s");
    println!("bisection solve      : {bisect_s:.3} s   (sweep speedup {speedup:.2}×, target ≥ 3×)");
    println!("compressed solve     : {compressed_s:.3} s");
    println!("dense memory         : {dense_bytes} B (values + argmax)");
    println!(
        "compressed memory    : {compressed_bytes} B across {breakpoints} breakpoints ({mem_ratio:.1}× smaller, target ≥ 10×)"
    );

    let json = format!(
        "{{\n  \"bench\": \"perf_dp\",\n  \"config\": {{ \"ticks_per_setup\": {ACCEPT_Q}, \"max_interrupts\": {ACCEPT_P}, \"lifespan_ticks\": {ACCEPT_TICKS} }},\n  \"quick_mode\": {quick},\n  \"runs_per_measurement\": {runs},\n  \"frontier_sweep_solve_s\": {sweep_s:.6},\n  \"bisection_solve_s\": {bisect_s:.6},\n  \"compressed_solve_s\": {compressed_s:.6},\n  \"sweep_vs_bisection_speedup\": {speedup:.3},\n  \"dense_memory_bytes\": {dense_bytes},\n  \"compressed_memory_bytes\": {compressed_bytes},\n  \"compressed_breakpoints\": {breakpoints},\n  \"memory_ratio\": {mem_ratio:.3}\n}}\n"
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp.json");
    std::fs::write(&path, json).expect("write BENCH_dp.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_solve_resolution,
    bench_inner_loop,
    bench_compressed_solve,
    bench_cached_sweep,
    bench_policy_eval,
    bench_queries,
    acceptance_report
);
criterion_main!(benches);
