//! P4 — simulator throughput: completed periods per second on a pool
//! scenario, and sensitivity to task granularity (finer tasks mean more
//! bag traffic per period).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_core::prelude::*;
use cyclesteal_workloads::{OwnerTrace, TaskBag, TaskDist};
use now_sim::{DriverKind, LenderConfig, NowSim};
use std::hint::black_box;
use std::sync::Arc;

fn pool(n_lenders: usize, task_len: f64) -> (Vec<LenderConfig>, TaskBag) {
    let lenders = (0..n_lenders)
        .map(|i| LenderConfig {
            name: format!("ws{i}"),
            opportunity: Opportunity::from_units(2_000.0, 1.0, 4),
            owner: OwnerTrace::poisson(i as u64, 0.003, secs(2_000.0), 4, secs(15.0)),
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            deadline: None,
        })
        .collect();
    let bag = TaskBag::generate_work(
        TaskDist::Constant(task_len),
        secs(2_000.0 * n_lenders as f64),
        7,
    );
    (lenders, bag)
}

fn bench_pool_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_pool_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || pool(n, 1.0),
                |(lenders, bag)| NowSim::new(black_box(lenders), bag).run().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_task_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_task_granularity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for len in [0.125f64, 1.0, 8.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{len}c")),
            &len,
            |b, &len| {
                b.iter_batched(
                    || pool(4, len),
                    |(lenders, bag)| NowSim::new(lenders, bag).run().unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool_size, bench_task_granularity);
criterion_main!(benches);
