//! E7 — the paper's raison d'être, measured: adaptive vs non-adaptive
//! guaranteed output over the `(U/c, p)` plane, with the exact optimum and
//! naive baselines for scale.
//!
//! Under the **corrected** constants (E5), both disciplines lose
//! `2√(pcU)` to first order as `p` grows (`β_p ~ √(2p)`, so the adaptive
//! loss `β_p√(2cU) → 2√(pcU)`), and the separation the paper celebrates is
//! second-order: adaptivity recovers `Θ(√(cU/p))` per opportunity while
//! the committed schedule recovers `p·c`. The crossover frontier
//! `p* ≈ (U/c)^(1/3)` this implies is mapped below — a sharper statement
//! of "when adaptivity pays" than the paper's asymptotic-in-`U` claim.

use cyclesteal_adversary::nonadaptive::worst_case;
use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::{evaluate_policy, EvalOptions, PolicyValue, TableCache};
use cyclesteal_par::par_map;

fn main() {
    let mut report = Report::new("adaptive_vs_nonadaptive");
    report.line("E7 — adaptive vs non-adaptive over the (U/c, p) plane (c = 1)");
    report.line("");

    let q = 4u32;
    let p_max = 12u32;
    let max_u = 8_192.0;
    let table = TableCache::global().get(secs(C), q, secs(max_u), p_max);

    let policies: Vec<(&str, Box<dyn EpisodePolicy>)> = vec![
        ("adaptive §3.2", Box::new(AdaptiveGuideline::default())),
        ("self-similar", Box::new(SelfSimilarGuideline::default())),
        ("equal-16", Box::new(EqualPeriodsPolicy::new(16))),
        ("halving", Box::new(HalvingPolicy::default())),
    ];
    let values: Vec<PolicyValue> = par_map(&policies, |(_, pol)| {
        evaluate_policy(
            pol.as_ref(),
            secs(C),
            q,
            secs(max_u),
            p_max,
            EvalOptions::default(),
        )
        .expect("policy evaluation")
    });

    report.line(format!(
        "{:>8} {:>3} {:>10} | {:>10} {:>10} {:>10} {:>9} | {:>9} {:>9}",
        "U/c", "p", "W optimal", "self-sim", "arith", "non-adapt", "ss−na", "equal-16", "halving"
    ));
    let us = [32.0, 128.0, 512.0, 2_048.0, 8_192.0];
    for &u in &us {
        for p in [1u32, 2, 4, 8, 12] {
            let opp = Opportunity::from_units(u, C, p);
            let w_opt = table.value(p, secs(u));
            let w_ss = values[1].value(p, secs(u));
            let w_ar = values[0].value(p, secs(u));
            let run = NonAdaptiveGuideline::run(&opp).unwrap();
            let w_na = worst_case(&run).work;
            let w_eq = values[2].value(p, secs(u));
            let w_hv = values[3].value(p, secs(u));
            report.line(format!(
                "{:>8} {:>3} {:>10.1} | {:>10.1} {:>10.1} {:>10.1} {:>9.1} | {:>9.1} {:>9.1}",
                u,
                p,
                w_opt,
                w_ss,
                w_ar,
                w_na,
                w_ss - w_na,
                w_eq,
                w_hv
            ));
            // Shape assertions:
            assert!(
                w_ss <= w_opt + secs(0.5) && w_ar <= w_opt + secs(0.5),
                "no policy beats the optimum"
            );
            // The *optimal adaptive* player always dominates the best
            // committed schedule (adaptivity cannot hurt):
            assert!(
                w_opt + secs(0.5) >= w_na,
                "optimum lost to non-adaptive at U={u}, p={p}"
            );
        }
        report.line("");
    }

    // --- The crossover frontier -------------------------------------------
    report.line("crossover frontier: largest p at which the self-similar guideline still");
    report.line("beats the non-adaptive guideline (second-order separation ⇒ p* grows");
    report.line("roughly like (U/c)^(1/3)):");
    let mut line = String::from("   ");
    for &u in &us {
        let mut p_star = 0u32;
        for p in 1..=p_max {
            let opp = Opportunity::from_units(u, C, p);
            let w_ss = values[1].value(p, secs(u));
            let run = NonAdaptiveGuideline::run(&opp).unwrap();
            let w_na = worst_case(&run).work;
            if w_ss + secs(1e-6) >= w_na {
                p_star = p;
            } else {
                break;
            }
        }
        line.push_str(&format!("  U/c={u}: p*≥{p_star}"));
        // Adaptivity must pay in the regime the paper motivates (modest p,
        // sizable U).
        if u >= 512.0 {
            assert!(p_star >= 4, "adaptivity fails too early at U/c={u}");
        }
    }
    report.line(line);
    report.line("");
    report.line("E7 verdict: the guideline separation the paper claims holds for modest p —");
    report.line("but under the corrected constants it is second-order, and the committed");
    report.line("schedule catches up once p ≳ (U/c)^(1/3); the exact adaptive optimum, of");
    report.line("course, dominates everywhere (adaptivity can never hurt).");
}
