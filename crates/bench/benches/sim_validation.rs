//! E8 — model-vs-execution validation: the discrete-event NOW simulator
//! replays analytic game transcripts exactly, and measures the two things
//! the continuum model abstracts away — task-quantization waste and
//! owner busy time — across four task mixes and three owner populations.

use cyclesteal_adversary::{game::run_game, TraceAdversary};
use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_par::par_map;
use cyclesteal_workloads::{OwnerTrace, TaskBag, TaskDist};
use now_sim::{DriverKind, LenderConfig, NowSim};
use std::sync::Arc;

fn main() {
    let mut report = Report::new("sim_validation");
    report.line("E8 — now-sim vs the analytic model");
    report.line("");

    // --- Part 1: exact transcript replay ---------------------------------
    report.line("part 1: banked Σ(t⊖c) in the simulator vs the analytic game, identical traces");
    let seeds: Vec<u64> = (0..32).collect();
    let diffs = par_map(&seeds, |&seed| {
        let u = 700.0;
        let p = 4u32;
        let trace = OwnerTrace::poisson(seed, 0.01, secs(u - 2.0), p as usize, Time::ZERO);
        let opp = Opportunity::from_units(u, C, p);
        let policy = AdaptiveGuideline::default();
        let mut adv = TraceAdversary::new(trace.interrupt_times());
        let analytic = run_game(&policy, &mut adv, &opp).unwrap();
        let cfg = LenderConfig {
            name: format!("ws{seed}"),
            opportunity: opp,
            owner: trace,
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            deadline: None,
        };
        let bag = TaskBag::generate_work(TaskDist::Constant(0.015625), secs(u + 50.0), seed);
        let report = NowSim::new(vec![cfg], bag).run().unwrap();
        (report.lenders[0].1.continuum_work - analytic.total_work)
            .abs()
            .get()
    });
    let max_diff = diffs.iter().copied().fold(0.0f64, f64::max);
    report.line(format!(
        "  {} random traces, max |sim − analytic| = {max_diff:.2e}",
        seeds.len()
    ));
    assert!(max_diff < 1e-6);
    report.line("");

    // --- Part 2: quantization waste by task mix ---------------------------
    report.line("part 2: task-indivisibility waste (fraction of banked capacity) by mix");
    report.line(format!(
        "  {:<34} {:>10} {:>10} {:>8}",
        "task mix", "banked", "task work", "waste%"
    ));
    let mixes: Vec<(&str, TaskDist)> = vec![
        ("constant 0.5c", TaskDist::Constant(0.5)),
        ("constant 4c", TaskDist::Constant(4.0)),
        ("uniform [0.2c, 6c)", TaskDist::Uniform { lo: 0.2, hi: 6.0 }),
        (
            "bimodal 0.5c/12c (20% long)",
            TaskDist::Bimodal {
                short: 0.5,
                long: 12.0,
                frac_long: 0.2,
            },
        ),
        (
            "Pareto(α=1.6, min 0.5c)",
            TaskDist::Pareto {
                shape: 1.6,
                scale: 0.5,
            },
        ),
    ];
    for (name, dist) in mixes {
        let cfg = LenderConfig {
            name: name.into(),
            opportunity: Opportunity::from_units(2_000.0, C, 3),
            owner: OwnerTrace::poisson(5, 0.002, secs(2_000.0), 3, Time::ZERO),
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            deadline: None,
        };
        let bag = TaskBag::generate_work(dist, secs(4_000.0), 9);
        let r = NowSim::new(vec![cfg], bag).run().unwrap();
        let m = &r.lenders[0].1;
        let waste_pct = 100.0 * m.quantization_waste.get() / m.continuum_work.get().max(1e-9);
        report.line(format!(
            "  {:<34} {:>10.1} {:>10.1} {:>7.2}%",
            name, m.continuum_work, m.task_work, waste_pct
        ));
        assert!((m.task_work + m.quantization_waste).approx_eq(m.continuum_work, secs(1e-6)));
    }
    report.line("");

    // --- Part 3: an eight-workstation pool under three owner climates ----
    report.line("part 3: pool throughput under owner climates (8 stations, shared bag)");
    report.line(format!(
        "  {:<22} {:>12} {:>10} {:>12} {:>10}",
        "owner climate", "task work", "tasks", "lost time", "interrupts"
    ));
    for (label, rate, busy) in [
        ("quiet night", 0.0005, 10.0),
        ("restless owners", 0.004, 40.0),
        ("hostile owners", 0.02, 120.0),
    ] {
        let lenders: Vec<LenderConfig> = (0..8)
            .map(|i| LenderConfig {
                name: format!("ws{i}"),
                opportunity: Opportunity::from_units(960.0, C, 3),
                owner: OwnerTrace::poisson(1000 + i, rate, secs(960.0), 3, secs(busy)),
                driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
                deadline: Some(secs(2_400.0)),
            })
            .collect();
        let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.5, hi: 3.0 }, 4_000, 13);
        let r = NowSim::new(lenders, bag).run().unwrap();
        let lost: Work = r.lenders.iter().map(|(_, m)| m.lost_time).sum();
        let interrupts: u32 = r.lenders.iter().map(|(_, m)| m.interrupts).sum();
        report.line(format!(
            "  {:<22} {:>12.1} {:>10} {:>12.1} {:>10}",
            label,
            r.total_task_work(),
            r.total_tasks(),
            lost,
            interrupts
        ));
    }
    report.line("");
    report.line("E8 reproduced: the engine is a faithful executor of the §2.2 model, and");
    report.line("quantization waste — invisible to the continuum analysis — stays in the");
    report.line("low single digits for task mixes fine relative to the period lengths.");
}
