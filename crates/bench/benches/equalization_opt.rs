//! E6 — Theorem 4.3's equalization construction, driven by the exact DP
//! oracle, against the exact game value: the "abstract guidelines" of §4
//! executed end-to-end.
//!
//! Also audits §5.2's `S_opt^(1)` (every adversary option equalized to
//! machine precision) and reports how far the *fully-productive*
//! restriction — which the paper admits it cannot justify rigorously —
//! is from the unrestricted optimum (spoiler: indistinguishable at grid
//! resolution, for every `(U, p)` tested).

use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::TableCache;

fn main() {
    let mut report = Report::new("equalization_opt");
    report.line("E6 / Theorem 4.3 — equalized schedules vs the exact game value (c = 1)");
    report.line("");

    let table = TableCache::global().get(secs(C), 16, secs(4_096.0), 4);

    report.line(format!(
        "{:>8} {:>3} {:>6} {:>14} {:>14} {:>10} {:>12}",
        "U/c", "p", "m", "equalized W", "exact W^(p)", "gap", "audit spread"
    ));
    for p in 1..=4u32 {
        for &u in &[64.0, 512.0, 4_096.0] {
            let opp = Opportunity::from_units(u, C, p);
            let (sched, value) = equalized_schedule(&*table, &opp).unwrap();
            let exact = table.value(p, secs(u));
            let audit = verify_equalization(&*table, &opp, &sched);
            // Spread among options whose continuation is still positive.
            let early: Vec<bool> = sched
                .iter_windows()
                .map(|(_, start, t)| {
                    let residual = (secs(u) - (start + t)).clamp_min_zero();
                    table.value(p.saturating_sub(1), residual).is_positive()
                })
                .collect();
            let spread = audit.early_spread(&early);
            report.line(format!(
                "{:>8} {:>3} {:>6} {:>14.2} {:>14.2} {:>10.3} {:>12.4}",
                u,
                p,
                sched.len(),
                value,
                exact,
                exact - value,
                spread
            ));
            assert!(
                (exact - value).abs() <= secs(0.01 * u.sqrt() + 0.3),
                "equalizer strayed from the game value at U={u}, p={p}"
            );
        }
    }
    report.line("");

    // --- §5.2 audit ---------------------------------------------------------
    report.line("§5.2 audit — S_opt^(1) option values (min = max to machine precision):");
    let oracle = ClosedFormOracle::new(secs(C));
    for &u in &[100.0, 10_000.0] {
        let opp = Opportunity::from_units(u, C, 1);
        let sched = optimal_p1_schedule(secs(u), secs(C)).unwrap();
        let audit = verify_equalization(&oracle, &opp, &sched);
        let lo = audit.option_values.iter().copied().min().unwrap();
        let hi = audit.option_values.iter().copied().max().unwrap();
        report.line(format!(
            "  U/c = {u}: {} options in [{lo:.6}, {hi:.6}], no-interrupt = {:.3}, W^(1) = {:.3}",
            audit.option_values.len(),
            audit.uninterrupted,
            w1_exact(secs(u), secs(C))
        ));
        assert!((hi - lo) <= secs(1e-6));
    }
    report.line("");

    // --- Fully-productive restriction -----------------------------------
    report.line("fully-productive restriction (§4.1's unproven heuristic):");
    report.line("  the DP searches ALL schedules (nonproductive periods allowed); the");
    report.line("  equalizer builds fully-productive ones. Their agreement above bounds");
    report.line("  the restriction's cost at grid resolution:");
    let mut worst_gap = Work::ZERO;
    for p in 1..=4u32 {
        for &u in &[64.0, 512.0, 4_096.0] {
            let opp = Opportunity::from_units(u, C, p);
            let (_s, value) = equalized_schedule(&*table, &opp).unwrap();
            worst_gap = worst_gap.max(table.value(p, secs(u)) - value);
        }
    }
    report.line(format!(
        "  max gap over the sweep = {worst_gap:.4} (≤ one grid tick + search tolerance per period)"
    ));
    report.line("");
    report.line("Theorem 4.3 reproduced: equalization recovers the exact optimum.");
}
