//! E1 — regenerates **Table 1**: "The consequences of the adversary's
//! options", instantiated on concrete opportunities with the exact-DP
//! oracle supplying the `W^(p−1)` continuations.
//!
//! The paper's table is symbolic; this bench prints it for the optimal
//! episode schedule at `U/c ∈ {64, 256}`, `p ∈ {1, 2, 3}` and verifies the
//! §4.2 equalization: every interrupt row's "Opportunity Work Production"
//! column is (numerically) constant and equals `W^(p)[U]`, while the
//! no-interrupt row strictly exceeds it.

use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_dp::TableCache;

fn main() {
    let mut report = Report::new("table1");
    report.line("E1 / Table 1 — the adversary's options (optimal episode schedules)");
    report.line(format!(
        "setup charge c = {C}; continuations scored by the exact DP oracle"
    ));
    report.line("");

    let table = TableCache::global().get(secs(C), 32, secs(256.0), 3);

    for &u in &[64.0, 256.0] {
        for p in 1..=3u32 {
            let opp = Opportunity::from_units(u, C, p);
            let sched = table.episode(p, secs(u)).unwrap();
            let rows = table1(&*table, &opp, &sched);
            report.line(format!(
                "--- U/c = {u}, p = {p}: m = {} periods, W^(p)[U] = {:.3} ---",
                sched.len(),
                table.value(p, secs(u))
            ));
            // The paper prints one row per period; for readability elide
            // the interior of long schedules (they are equalized anyway).
            let show = |r: &Table1Row| {
                format!(
                    "{:>12} | {:>24} | {:>12.3} | {:>10.3} | {:>16.3}",
                    match r.option {
                        AdversaryOption::NoInterrupt => "no interrupt".to_string(),
                        AdversaryOption::Period(k) => format!("period {}", k + 1),
                    },
                    match r.window {
                        None => "N/A".to_string(),
                        Some((a, b)) => format!("t in [{a:.2}, {b:.2})"),
                    },
                    r.episode_work,
                    r.residual,
                    r.opportunity_work
                )
            };
            report.line(format!(
                "{:>12} | {:>24} | {:>12} | {:>10} | {:>16}",
                "option", "interruption time", "episode work", "residual", "opportunity work"
            ));
            let m = rows.len();
            for (i, row) in rows.iter().enumerate() {
                if m > 14 && (6..m - 4).contains(&i) {
                    if i == 6 {
                        report.line(format!(
                            "{:>12} | (… {} equalized rows elided …)",
                            "⋮",
                            m - 10
                        ));
                    }
                    continue;
                }
                report.line(show(row));
            }

            // Machine-check the §4.2 equalization claims.
            let w = table.value(p, secs(u));
            let adv = adversary_value(&rows);
            assert!(
                (adv - w).abs() <= secs(0.25),
                "adversary value {adv} vs W^(p) {w}"
            );
            let spread = rows[1..]
                .iter()
                .map(|r| r.opportunity_work)
                .fold((Work::new(f64::MAX), Work::ZERO), |(lo, hi), v| {
                    (lo.min(v), hi.max(v))
                });
            report.line(format!(
                "check: interrupt-option spread = {:.3} (equalization), no-interrupt row = {:.3} > W^(p)",
                spread.1 - spread.0,
                rows[0].opportunity_work
            ));
            assert!(rows[0].opportunity_work + secs(1e-9) >= adv);
            report.line("");
        }
    }
    report.line("Table 1 reproduced: the adversary is indifferent among interrupt options");
    report.line("against the optimal schedule, exactly as §4.2's equalization strategy intends.");
}
