//! E5 — Theorem 5.1, measured — **with a corrected constant**.
//!
//! The paper claims `W(Σ_a^(p)[U]) ≥ U − (2 − 2^(1−p))·√(2cU) −
//! O(U^(1/4) + pc)`. This reproduction finds the printed coefficient
//! **unachievable for `p ≥ 2`**: the exact game's asymptotic loss constant
//! is `β_p` with `β_1 = 1`, `β_p = (β_{p−1} + √(β_{p−1}²+4))/2` — the
//! golden ratio `φ ≈ 1.618` at `p = 2` versus the printed `1.5` — derived
//! from Theorem 4.3's own equalization in the continuum limit and
//! confirmed by the DP to three digits at `U/c = 131072`
//! (`cargo run -p cyclesteal-bench --bin beta_probe`).
//!
//! Columns: the §3.2 arithmetic guideline (as reconstructed), the
//! corrected *self-similar* guideline `t = γ_p√(2cR)`, the exact optimum,
//! and their measured loss coefficients against both constants.
//!
//! Also runs the Table-2-literal `p = 1` ablation (DESIGN.md §1.1 note 4).

use cyclesteal_bench::{Report, C};
use cyclesteal_core::error::Result;
use cyclesteal_core::prelude::*;
use cyclesteal_dp::{evaluate_policy, EvalOptions, PolicyValue, TableCache};
use cyclesteal_par::par_map;

/// Table 2's literal `S_a^(1)[U]`: `m = ⌊√(2U/c) + 2⌋` periods with
/// `t_k = √(2cU) − (k − 7/2)c` for `k ≤ m − 2` and two trailing `3c/2`
/// periods, rescaled minimally so the lengths sum to `U`.
struct LiteralTable2P1;

impl EpisodePolicy for LiteralTable2P1 {
    fn episode(&self, opp: &Opportunity) -> Result<EpisodeSchedule> {
        let u = opp.lifespan();
        let c = opp.setup();
        if opp.interrupts() == 0 || u <= c * 6.0 {
            return EpisodeSchedule::single(u);
        }
        let m = ((2.0 * u.ratio(c)).sqrt() + 2.0).floor() as usize;
        let sqrt2cu = (2.0 * c.get() * u.get()).sqrt();
        let mut periods: Vec<Time> = Vec::with_capacity(m);
        for k in 1..=m.saturating_sub(2) {
            let t = sqrt2cu - (k as f64 - 3.5) * c.get();
            periods.push(Time::new(t.max(1.6 * c.get())));
        }
        periods.push(c * 1.5);
        periods.push(c * 1.5);
        // The literal lengths only sum to U up to O(√U) slack; rescale the
        // leading periods proportionally to cover U exactly.
        let total: Time = periods.iter().copied().sum();
        let scale = u.ratio(total);
        for t in &mut periods {
            *t = *t * scale;
        }
        EpisodeSchedule::for_lifespan(periods, u)
    }
    fn name(&self) -> String {
        "table2-literal-p1".into()
    }
}

fn main() {
    let mut report = Report::new("thm51_guarantee");
    report.line("E5 / Theorem 5.1 — guidelines vs exact optimum, claimed vs corrected constants");
    report.line("");
    report.line("corrected loss constants β_p (this repo) vs printed 2 − 2^(1−p) (paper):");
    for p in 1..=5u32 {
        report.line(format!(
            "  p = {p}:  β_p = {:.4}   printed = {:.4}",
            loss_coefficient(p),
            2.0 - 2.0f64.powi(1 - p as i32)
        ));
    }
    report.line("");

    let q = 8u32;
    let p_max = 5u32;
    let max_u = 16_384.0;
    // One cached solve serves every (U/c, p) cell in the sweep below.
    let table = TableCache::global().get(secs(C), q, secs(max_u), p_max);
    let policies: Vec<(&str, Box<dyn EpisodePolicy>)> = vec![
        ("arithmetic §3.2", Box::new(AdaptiveGuideline::default())),
        ("self-similar", Box::new(SelfSimilarGuideline::default())),
    ];
    let values: Vec<PolicyValue> = par_map(&policies, |(_, pol)| {
        evaluate_policy(
            pol.as_ref(),
            secs(C),
            q,
            secs(max_u),
            p_max,
            EvalOptions::default(),
        )
        .expect("policy evaluation")
    });

    report.line(format!(
        "{:>8} {:>3} | {:>11} {:>11} {:>11} | {:>7} {:>7} {:>7} | {:>7}",
        "U/c", "p", "arithmetic", "self-sim", "optimal", "c_arith", "c_self", "c_opt", "β_p"
    ));
    let us = [64.0, 256.0, 1_024.0, 4_096.0, 16_384.0];
    for p in 1..=p_max {
        let beta = loss_coefficient(p);
        for &u in &us {
            let wa = values[0].value(p, secs(u));
            let ws = values[1].value(p, secs(u));
            let wo = table.value(p, secs(u));
            let coeff = |w: Work| (u - w.get()) / (2.0 * C * u).sqrt();
            report.line(format!(
                "{:>8} {:>3} | {:>11.1} {:>11.1} {:>11.1} | {:>7.3} {:>7.3} {:>7.3} | {:>7.3}",
                u,
                p,
                wa,
                ws,
                wo,
                coeff(wa),
                coeff(ws),
                coeff(wo),
                beta
            ));
            // Soundness: nothing beats the optimum; the optimum's
            // coefficient approaches β_p from below (positive O(pc)
            // finite-size terms favour the owner at small U), so check
            // the asymptotic end of the sweep.
            assert!(wa <= wo + secs(0.5) && ws <= wo + secs(0.5));
            if u >= 4_096.0 {
                assert!(
                    coeff(wo) >= beta - 0.08,
                    "optimum beats the corrected constant at U={u}, p={p}"
                );
            }
            // Corrected bound with fitted low-order constants holds for
            // the self-similar guideline everywhere on the sweep.
            let opp = Opportunity::from_units(u, C, p);
            let bound = corrected_guarantee(&opp, 4.0, 4.0);
            assert!(
                ws + secs(1e-6) >= bound,
                "corrected bound violated by self-similar at U={u}, p={p}: {ws} < {bound}"
            );
        }
        // At the top of the sweep the self-similar guideline's coefficient
        // is within 4% of β_p; the arithmetic reconstruction trails it.
        let top = 16_384.0;
        let cs = (top - values[1].value(p, secs(top)).get()) / (2.0 * C * top).sqrt();
        assert!(
            cs <= beta * 1.04 + 0.02,
            "self-similar coefficient {cs} strays from β_{p} = {beta}"
        );
        report.line("");
    }

    // --- Reconstruction ablation at p = 1 ---------------------------------
    report.line("p = 1 ablation — exact-remainder reconstruction vs Table-2-literal schedule:");
    let lit = evaluate_policy(
        &LiteralTable2P1,
        secs(C),
        q,
        secs(max_u),
        1,
        EvalOptions::default(),
    )
    .unwrap();
    report.line(format!(
        "{:>8} {:>14} {:>14} {:>14}",
        "U/c", "reconstructed", "literal", "optimal"
    ));
    for &u in &us {
        let a = values[0].value(1, secs(u));
        let b = lit.value(1, secs(u));
        let o = table.value(1, secs(u));
        report.line(format!("{:>8} {:>14.1} {:>14.1} {:>14.1}", u, a, b, o));
        assert!((a - b).abs() <= secs(0.02 * u.sqrt() + 3.0));
    }
    report.line("");
    report.line("E5 verdict: the guidelines track the exact optimum to low-order terms, but");
    report.line("the printed Thm 5.1 coefficient (2 − 2^(1−p)) is below the exact game's");
    report.line("asymptotic loss constant β_p for every p ≥ 2 and therefore unachievable;");
    report.line("the corrected constant follows β_p = (β_{p−1} + √(β_{p−1}²+4))/2.");
}
