//! P2 — schedule-construction throughput for every family, plus the
//! Theorem 4.3 equalizer (the "computationally efficient guidelines" the
//! paper promises should be cheap; measure it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_core::prelude::*;
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_construction");
    for &u in &[1_000.0, 100_000.0] {
        let opp = Opportunity::from_units(u, 1.0, 3);
        group.bench_with_input(
            BenchmarkId::new("nonadaptive_s31", u as u64),
            &opp,
            |b, o| b.iter(|| NonAdaptiveGuideline::build(black_box(o)).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("adaptive_s32", u as u64), &opp, |b, o| {
            let g = AdaptiveGuideline::default();
            b.iter(|| g.episode(black_box(o)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("optimal_p1_s52", u as u64),
            &opp,
            |b, o| b.iter(|| optimal_p1_schedule(black_box(o.lifespan()), o.setup()).unwrap()),
        );
    }
    group.finish();
}

fn bench_equalizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm43_equalizer");
    group.sample_size(20);
    let oracle = ClosedFormOracle::new(secs(1.0));
    for &u in &[1_000.0, 10_000.0] {
        let opp = Opportunity::from_units(u, 1.0, 1);
        group.bench_with_input(BenchmarkId::from_parameter(u as u64), &opp, |b, o| {
            b.iter(|| equalized_schedule(&oracle, black_box(o)).unwrap())
        });
    }
    group.finish();
}

fn bench_accounting(c: &mut Criterion) {
    let opp = Opportunity::from_units(100_000.0, 1.0, 4);
    let sched = NonAdaptiveGuideline::build(&opp).unwrap();
    c.bench_function("work_uninterrupted_630_periods", |b| {
        b.iter(|| black_box(&sched).work_uninterrupted(secs(1.0)))
    });
    c.bench_function("make_productive_630_periods", |b| {
        b.iter(|| black_box(&sched).make_productive(secs(1.0)))
    });
}

criterion_group!(benches, bench_families, bench_equalizer, bench_accounting);
criterion_main!(benches);
