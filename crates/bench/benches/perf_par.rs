//! P5 — scaling of the parallel sweep utilities on a representative
//! workload (many small game evaluations), 1 thread vs the default pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesteal_adversary::nonadaptive::worst_case;
use cyclesteal_core::prelude::*;
use cyclesteal_par::{default_threads, par_map_threads};
use std::hint::black_box;

fn workload() -> Vec<(f64, u32)> {
    let mut cells = Vec::new();
    for i in 0..256 {
        cells.push((500.0 + 37.0 * i as f64, 1 + (i % 6) as u32));
    }
    cells
}

fn cell_cost(cell: &(f64, u32)) -> f64 {
    let (u, p) = *cell;
    let opp = Opportunity::from_units(u, 1.0, p);
    let run = NonAdaptiveGuideline::run(&opp).unwrap();
    worst_case(&run).work.get()
}

fn bench_scaling(c: &mut Criterion) {
    let cells = workload();
    let mut group = c.benchmark_group("par_map_scaling");
    group.sample_size(20);
    for threads in [1usize, default_threads()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| par_map_threads(black_box(&cells), threads, cell_cost)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
