//! E4 — §3.1's non-adaptive guideline, measured:
//!
//! * the exact combinatorial worst case of `S_na^(p)[U]` across a
//!   `(U/c, p)` sweep, against the closed form
//!   `(m−p)(U/m−c) = U − 2√(pcU) + pc + O(√(cU/p))`
//!   (DESIGN.md §1.1 note 1 explains the reconstruction of the scanned
//!   formula);
//! * the adversary's optimal play (which periods die);
//! * the `m`-ablation: the guideline's `m = ⌊√(pU/c)⌋` against a sweep of
//!   alternative period counts;
//! * the tail-consolidation ablation (§2.2's "one long period" exception
//!   on vs off).

use cyclesteal_adversary::nonadaptive::worst_case;
use cyclesteal_bench::{Report, C};
use cyclesteal_core::prelude::*;
use cyclesteal_par::{par_map, sweep};

fn main() {
    let mut report = Report::new("nonadaptive_guarantee");
    report.line("E4 / §3.1 — non-adaptive guideline S_na^(p)[U] (c = 1)");
    report.line("");
    report.line(format!(
        "{:>8} {:>3} {:>6} {:>12} {:>14} {:>10} {:>16}",
        "U/c", "p", "m", "worst case", "U−2√(pcU)+pc", "diff", "killed periods"
    ));

    let us = sweep::geometric(16.0, 65_536.0, 4.0);
    let ps: Vec<u32> = (1..=8).collect();
    let cells = sweep::cartesian(&us, &ps);
    let rows = par_map(&cells, |&(u, p)| {
        let opp = Opportunity::from_units(u, C, p);
        let run = NonAdaptiveGuideline::run(&opp).unwrap();
        let wc = worst_case(&run);
        let m = run.schedule().len();
        let closed = (u - 2.0 * (p as f64 * C * u).sqrt() + p as f64 * C).max(0.0);
        (u, p, m, wc, closed)
    });
    for (u, p, m, wc, closed) in &rows {
        // Summarize the kill set compactly ("last 3 of 86" style).
        let killed = if wc.killed.is_empty() {
            "none".to_string()
        } else {
            let tail_kills = wc
                .killed
                .iter()
                .rev()
                .zip((0..*m).rev())
                .take_while(|(k, i)| **k == *i)
                .count();
            if tail_kills == wc.killed.len() {
                format!("last {} of {m}", wc.killed.len())
            } else {
                format!("{:?}", wc.killed)
            }
        };
        report.line(format!(
            "{:>8} {:>3} {:>6} {:>12.1} {:>14.1} {:>10.2} {:>16}",
            u,
            p,
            m,
            wc.work,
            closed,
            wc.work.get() - closed,
            killed
        ));
        // The integral-m guideline stays within one period of the continuum.
        let period = (C * u / *p as f64).sqrt() + C;
        assert!(
            (wc.work.get() - closed).abs() <= period,
            "U={u} p={p}: worst case {} vs closed {closed}",
            wc.work
        );
    }
    report.line("");

    // --- m-ablation --------------------------------------------------------
    report.line("m-ablation at U/c = 16384 (guideline m = ⌊√(pU/c)⌋ marked *):");
    report.line(format!(
        "{:>3} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "p", "m*/4", "m*/2", "m*", "2m*", "4m*"
    ));
    for p in [1u32, 2, 4, 8] {
        let u = 16_384.0;
        let opp = Opportunity::from_units(u, C, p);
        let m_star = NonAdaptiveGuideline::period_count(&opp);
        let cols: Vec<String> = [m_star / 4, m_star / 2, m_star, m_star * 2, m_star * 4]
            .iter()
            .map(|&m| {
                let sched = NonAdaptiveGuideline::build_with_m(&opp, m.max(1)).unwrap();
                let run = NonAdaptiveRun::new(sched, secs(C), secs(u), p).unwrap();
                format!("{:.0}", worst_case(&run).work)
            })
            .collect();
        report.line(format!(
            "{:>3} {:>10} {:>10} {:>9}* {:>10} {:>10}",
            p, cols[0], cols[1], cols[2], cols[3], cols[4]
        ));
        // The guideline's m is the best of the sampled column.
        let best = cols
            .iter()
            .map(|s| s.parse::<f64>().unwrap())
            .fold(f64::MIN, f64::max);
        assert!(cols[2].parse::<f64>().unwrap() >= best - 1.0);
    }
    report.line("");

    // --- consolidation ablation ---------------------------------------------
    report.line("tail-consolidation ablation (worst case with the §2.2 exception on/off):");
    report.line(format!(
        "{:>8} {:>3} {:>14} {:>14}",
        "U/c", "p", "with", "without"
    ));
    for &(u, p) in &[(1_024.0, 2u32), (16_384.0, 4)] {
        let opp = Opportunity::from_units(u, C, p);
        let run = NonAdaptiveGuideline::run(&opp).unwrap();
        let with = worst_case(&run).work;
        // "Without": the adversary may delete any p contributions outright
        // (kills at last instants, tail replayed as scheduled).
        let sched = run.schedule();
        let mut contributions: Vec<f64> = (0..sched.len())
            .map(|k| sched.period_work(k, secs(C)).get())
            .collect();
        contributions.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = contributions.iter().sum();
        let removed: f64 = contributions.iter().take(p as usize).sum();
        let without = total - removed;
        report.line(format!(
            "{:>8} {:>3} {:>14.1} {:>14.1}",
            u, p, with, without
        ));
        // Consolidation helps the owner: the exception recovers part of
        // the tail, so "with" ≥ … actually the adversary anticipates it;
        // both are exact minima of their own games. Record, don't rank.
    }
    report.line("");
    report.line("§3.1 reproduced: the guideline's worst case tracks U − 2√(pcU) + pc, and");
    report.line("the adversary kills the last p periods (maximizing the dead consolidated tail).");
}
