//! The rule table: token-pattern matchers over a [`FileScan`].
//!
//! Every rule has a stable kebab-case id — the name a waiver cites —
//! and belongs to one of four families, scoped by `lint.toml`:
//!
//! | family | rule ids |
//! |---|---|
//! | determinism | `wall-clock`, `sleep`, `hash-collections`, `unseeded-rng` |
//! | panic-policy | `panic-unwrap`, `panic-macro` |
//! | wire-safety | `lossy-cast` |
//! | meta | `forbid-unsafe` |
//!
//! Matching is over the blanked token stream (comments/strings can
//! never hit) and skips tokens inside test regions. See
//! `docs/INVARIANTS.md` for rationale and the waiver syntax.

use crate::scan::{FileScan, Tok, TokKind};

/// One raw rule hit (pre-waiver): which rule fired at which token.
#[derive(Clone, Debug)]
pub struct Hit {
    /// Stable rule id (what a waiver must cite).
    pub rule: &'static str,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Short human explanation of this specific hit.
    pub message: String,
}

/// Cast targets the `lossy-cast` rule flags: every integer target that
/// can truncate or change sign coming from the wire's unsigned field
/// types. `usize`/`u64`/`u128`/floats are exempt — on the supported
/// 64-bit serving targets, widening the wire's `u8`/`u32` fields into
/// them is value-preserving. (`i64 as u64` slips through; the codecs
/// keep tick counts in `i64`/`u64` deliberately.)
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize"];

/// Identifiers that name an unseeded (environment-keyed) randomness
/// source in any of the vendored or std APIs.
const UNSEEDED_RNG: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "getrandom",
];

fn live(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks.get(i).filter(|t| !t.in_test)
}

/// Determinism family: wall clocks, sleeps, iteration-order-unstable
/// collections, unseeded randomness.
pub fn determinism(scan: &FileScan, hits: &mut Vec<Hit>) {
    let toks = &scan.tokens;
    for i in 0..toks.len() {
        let Some(t) = live(toks, i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // `SystemTime` anywhere (even `use`) — wall-clock type.
            "SystemTime" => hits.push(Hit {
                rule: "wall-clock",
                line: t.line,
                col: t.col,
                message: "SystemTime is wall-clock state; use the logical clock".into(),
            }),
            // `Instant::now` — `Instant` alone may ride in signatures.
            "Instant" if path_follows(toks, i, "now") => hits.push(Hit {
                rule: "wall-clock",
                line: t.line,
                col: t.col,
                message: "Instant::now() reads the wall clock; use the logical clock".into(),
            }),
            "thread" if path_follows(toks, i, "sleep") => hits.push(Hit {
                rule: "sleep",
                line: t.line,
                col: t.col,
                message: "thread::sleep makes timing part of the output".into(),
            }),
            "HashMap" | "HashSet" => hits.push(Hit {
                rule: "hash-collections",
                line: t.line,
                col: t.col,
                message: format!(
                    "{} iterates in nondeterministic order; use BTreeMap/BTreeSet",
                    t.text
                ),
            }),
            name if UNSEEDED_RNG.contains(&name) => hits.push(Hit {
                rule: "unseeded-rng",
                line: t.line,
                col: t.col,
                message: format!("{name} is seeded from the environment; pass an explicit seed"),
            }),
            _ => {}
        }
    }
}

/// Panic-policy family: `.unwrap()`/`.expect(…)` and panicking macros
/// in serving/storage production paths.
pub fn panic_policy(scan: &FileScan, hits: &mut Vec<Hit>) {
    let toks = &scan.tokens;
    for i in 0..toks.len() {
        let Some(t) = live(toks, i) else { continue };
        match t.kind {
            TokKind::Punct('.') => {
                // `.unwrap(` / `.expect(` — exact method-name match, so
                // `unwrap_or_else` / `expect_err` never hit.
                let Some(name) = live(toks, i + 1) else {
                    continue;
                };
                if (name.is_ident("unwrap") || name.is_ident("expect"))
                    && live(toks, i + 2).is_some_and(|p| p.is_punct('('))
                {
                    hits.push(Hit {
                        rule: "panic-unwrap",
                        line: name.line,
                        col: name.col,
                        message: format!(
                            ".{}() can panic; return a typed error instead",
                            name.text
                        ),
                    });
                }
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && live(toks, i + 1).is_some_and(|p| p.is_punct('!')) =>
            {
                hits.push(Hit {
                    rule: "panic-macro",
                    line: t.line,
                    col: t.col,
                    message: format!("{}! aborts the request path", t.text),
                });
            }
            _ => {}
        }
    }
}

/// Wire-safety: narrowing/sign-changing `as` casts in codec modules.
pub fn wire_safety(scan: &FileScan, hits: &mut Vec<Hit>) {
    let toks = &scan.tokens;
    for i in 0..toks.len() {
        let Some(t) = live(toks, i) else { continue };
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = live(toks, i + 1) else {
            continue;
        };
        if target.kind == TokKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
            hits.push(Hit {
                rule: "lossy-cast",
                line: t.line,
                col: t.col,
                message: format!(
                    "`as {}` can truncate or change sign on the wire; use a checked conversion",
                    target.text
                ),
            });
        }
    }
}

/// Meta: a crate root must carry `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe(scan: &FileScan, hits: &mut Vec<Hit>) {
    let toks = &scan.tokens;
    let found = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found {
        hits.push(Hit {
            rule: "forbid-unsafe",
            line: 1,
            col: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Whether `toks[i]` is followed by `::<segment>` (tolerating nothing
/// in between — the scanner keeps `::` as two adjacent puncts).
fn path_follows(toks: &[Tok], i: usize, segment: &str) -> bool {
    toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
        && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
        && toks.get(i + 3).is_some_and(|c| c.is_ident(segment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn rules_of(hits: &[Hit]) -> Vec<&'static str> {
        hits.iter().map(|h| h.rule).collect()
    }

    #[test]
    fn determinism_patterns_fire_once_each() {
        let s = scan(
            "use std::time::SystemTime;\n\
             fn f() { let t = Instant::now(); thread::sleep(d); }\n\
             fn g(m: HashMap<u32, u32>, s: HashSet<u32>) { let r = thread_rng(); }\n",
        );
        let mut hits = Vec::new();
        determinism(&s, &mut hits);
        assert_eq!(
            rules_of(&hits),
            [
                "wall-clock",
                "wall-clock",
                "sleep",
                "hash-collections",
                "hash-collections",
                "unseeded-rng"
            ]
        );
    }

    #[test]
    fn instant_in_a_signature_is_not_a_hit() {
        let s = scan("fn f(deadline: Option<Instant>) -> Instant { deadline.unwrap_or(x) }\n");
        let mut hits = Vec::new();
        determinism(&s, &mut hits);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unwrap_variants_do_not_false_positive() {
        let s = scan(
            "fn f() { a.unwrap(); b.expect(\"x\"); c.unwrap_or(1); d.unwrap_or_else(g); \
             e.unwrap_or_default(); h.expect_err(\"y\"); }\n",
        );
        let mut hits = Vec::new();
        panic_policy(&s, &mut hits);
        assert_eq!(rules_of(&hits), ["panic-unwrap", "panic-unwrap"]);
    }

    #[test]
    fn panic_macros_hit_but_paths_do_not() {
        let s = scan(
            "fn f() { panic!(\"x\"); unreachable!(); todo!(); unimplemented!(); }\n\
             fn g() { std::panic::catch_unwind(h); }\n",
        );
        let mut hits = Vec::new();
        panic_policy(&s, &mut hits);
        assert_eq!(
            rules_of(&hits),
            ["panic-macro", "panic-macro", "panic-macro", "panic-macro"]
        );
    }

    #[test]
    fn only_narrowing_casts_hit() {
        let s = scan(
            "fn f(x: usize, y: u64) { let a = x as u32; let b = y as i64; \
             let c = x as u64; let d = y as usize; let e = x as f64; }\n\
             use foo as bar;\n",
        );
        let mut hits = Vec::new();
        wire_safety(&s, &mut hits);
        assert_eq!(rules_of(&hits), ["lossy-cast", "lossy-cast"]);
    }

    #[test]
    fn forbid_unsafe_detects_presence_and_absence() {
        let with = scan("//! docs\n#![forbid(unsafe_code)]\nfn f() {}\n");
        let without = scan("//! docs\n#![warn(missing_docs)]\nfn f() {}\n");
        let mut hits = Vec::new();
        forbid_unsafe(&with, &mut hits);
        assert!(hits.is_empty());
        forbid_unsafe(&without, &mut hits);
        assert_eq!(rules_of(&hits), ["forbid-unsafe"]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let s = scan(
            "fn live() { m.insert(HashMap::new()); }\n\
             #[cfg(test)]\nmod tests {\n  fn t() { a.unwrap(); let h = HashMap::new(); \
             panic!(); let x = 1u64 as u32; }\n}\n",
        );
        let mut hits = Vec::new();
        determinism(&s, &mut hits);
        panic_policy(&s, &mut hits);
        wire_safety(&s, &mut hits);
        assert_eq!(rules_of(&hits), ["hash-collections"]);
    }
}
