//! Source scanner: a comment/string/raw-string-aware lexer, test-region
//! tracking, and waiver collection.
//!
//! The scanner is deliberately *not* a Rust parser. It produces exactly
//! what the rule patterns need and nothing more:
//!
//! 1. a **token stream** (identifiers and single-char punctuation with
//!    1-based line/column spans) lexed from a *blanked* copy of the file
//!    in which every comment, string literal, raw string, byte string
//!    and char literal has been replaced by spaces — so a rule pattern
//!    can never match text that the compiler treats as data;
//! 2. a **test-region mark** on every token: code under a
//!    `#[cfg(test)]` / `#[test]` attribute (tracked to the matching
//!    close brace of the item that follows) or inside an inline
//!    `mod tests { .. }` is exempt from every rule;
//! 3. the **waivers**: `// lint:allow(<rule-id>): <reason>` comments,
//!    with the line they sit on and whether the mandatory reason is
//!    present.
//!
//! Lifetimes (`'a`) are distinguished from char literals (`'a'`) by
//! lookahead; block comments nest, as in Rust proper.

/// What a lexed token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`, …).
    Ident,
    /// A numeric literal (consumed as one token, suffix included).
    Number,
    /// A single punctuation character.
    Punct(char),
}

/// One token of the blanked source.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind; for punctuation the character rides in the kind.
    pub kind: TokKind,
    /// The token text (empty for punctuation — the char is in the kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
    /// Whether the token sits inside a test region (see module docs).
    pub in_test: bool,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One `lint:allow(<rule-id>): <reason>` waiver comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule id inside the parentheses.
    pub rule: String,
    /// 1-based line the waiver text sits on.
    pub line: u32,
    /// The reason after the colon, trimmed; `None` when missing or
    /// empty — a malformed waiver that waives nothing.
    pub reason: Option<String>,
}

/// The scan of one source file.
pub struct FileScan {
    /// Tokens of the blanked source, in order.
    pub tokens: Vec<Tok>,
    /// Waivers found in comments, in line order.
    pub waivers: Vec<Waiver>,
    /// `code_lines[line - 1]`: whether that line carries at least one
    /// code token (used to let a waiver comment block sit above its
    /// finding).
    pub code_lines: Vec<bool>,
    /// The raw source lines, for finding snippets.
    pub lines: Vec<String>,
}

/// Scans one file's source text.
pub fn scan(source: &str) -> FileScan {
    let (blanked, comments) = blank(source);
    let mut tokens = tokenize(&blanked);
    mark_test_regions(&mut tokens);

    let lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    let mut code_lines = vec![false; lines.len()];
    for t in &tokens {
        if let Some(slot) = code_lines.get_mut(t.line as usize - 1) {
            *slot = true;
        }
    }

    let mut waivers = Vec::new();
    for (line, text) in &comments {
        if let Some(w) = parse_waiver(*line, text) {
            waivers.push(w);
        }
    }

    // A reason may wrap onto following comment-only lines of the same
    // block; join those continuations so multi-line waiver reasons
    // survive intact in reports.
    for w in &mut waivers {
        let Some(reason) = &mut w.reason else {
            continue;
        };
        if w.line as usize <= code_lines.len() && code_lines[w.line as usize - 1] {
            // A trailing waiver on a code line stands alone — the line
            // below is unrelated.
            continue;
        }
        let mut next = w.line + 1;
        while let Some((_, text)) = comments.iter().find(|(l, _)| *l == next) {
            let cont = text.trim().trim_start_matches('/').trim();
            if cont.is_empty()
                || parse_waiver(next, text).is_some()
                || code_lines.get(next as usize - 1).copied().unwrap_or(false)
            {
                break;
            }
            reason.push(' ');
            reason.push_str(cont);
            next += 1;
        }
    }

    FileScan {
        tokens,
        waivers,
        code_lines,
        lines,
    }
}

/// One source character with its (line, column); comment/string bodies
/// arrive already replaced by spaces.
type BlankedChar = (char, u32, u32);
/// The comment text found on one line, keyed by line number — the input
/// to waiver parsing.
type LineComment = (u32, String);

/// Replaces comments, strings, raw strings and char literals by spaces
/// (newlines preserved) and collects per-line comment text.
fn blank(source: &str) -> (Vec<BlankedChar>, Vec<LineComment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<BlankedChar> = Vec::with_capacity(chars.len());
    let mut comments: Vec<LineComment> = Vec::new();

    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut i = 0usize;

    // Pushes one output char, advancing the line/col counters.
    macro_rules! emit {
        ($c:expr) => {{
            let c: char = $c;
            out.push((c, line, col));
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }
    // Appends comment text to the current line's comment chunk.
    fn note(comments: &mut Vec<(u32, String)>, line: u32, c: char) {
        match comments.last_mut() {
            Some((l, s)) if *l == line => s.push(c),
            _ => comments.push((line, c.to_string())),
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');

        match c {
            '/' if next == Some('/') => {
                // Line comment (incl. doc comments) to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    note(&mut comments, line, chars[i]);
                    emit!(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        note(&mut comments, line, ' ');
                        emit!(' ');
                        emit!(' ');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        emit!(' ');
                        emit!(' ');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        note(&mut comments, line, chars[i]);
                        emit!(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain string literal (a preceding `b` was emitted as
                // code — harmless, it lexes as a standalone ident).
                emit!(' ');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        emit!(' ');
                        emit!(' ');
                        i += 2;
                    } else if chars[i] == '"' {
                        emit!(' ');
                        i += 1;
                        break;
                    } else {
                        emit!(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' | 'b' if !prev_is_ident => {
                // Possible raw/byte string opener: r", r#", b", br", br#"…
                let mut j = i;
                if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                    j += 2;
                } else if chars[j] == 'r' || chars[j] == 'b' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                let is_raw = chars[i] != 'b' || chars.get(i + 1) == Some(&'r');
                if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) {
                    // Blank the opener.
                    while i <= j {
                        emit!(' ');
                        i += 1;
                    }
                    // Scan to the closing quote + matching hashes (raw
                    // strings have no escapes; a plain b"…" does).
                    while i < chars.len() {
                        if !is_raw && chars[i] == '\\' && i + 1 < chars.len() {
                            emit!(' ');
                            emit!(' ');
                            i += 2;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    emit!(' ');
                                    i += 1;
                                }
                                break;
                            }
                        }
                        emit!(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    emit!(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a char literal is '\…' or
                // 'x' (any single char followed by a closing quote); a
                // lifetime has no closing quote right after its one
                // "payload" char.
                if next == Some('\\') {
                    emit!(' ');
                    emit!(' ');
                    emit!(' ');
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        emit!(' ');
                        i += 1;
                    }
                    if i < chars.len() {
                        emit!(' ');
                        i += 1;
                    }
                } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                    emit!(' ');
                    emit!(' ');
                    emit!(' ');
                    i += 3;
                } else {
                    // Lifetime: keep the quote as code punctuation.
                    emit!(c);
                    i += 1;
                }
            }
            _ => {
                emit!(c);
                i += 1;
            }
        }
    }

    (out, comments)
}

/// Lexes the blanked char stream into tokens.
fn tokenize(blanked: &[(char, u32, u32)]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < blanked.len() {
        let (c, line, col) = blanked[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < blanked.len() {
                let (d, _, _) = blanked[i];
                if d.is_alphanumeric() || d == '_' {
                    text.push(d);
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
                in_test: false,
            });
        } else if c.is_ascii_digit() {
            // `.` stays punctuation so `x.0.unwrap()` still exposes the
            // `.unwrap(` sequence; `1.5` lexes as three tokens, which no
            // rule pattern cares about.
            let mut text = String::new();
            while i < blanked.len() {
                let (d, _, _) = blanked[i];
                if d.is_alphanumeric() || d == '_' {
                    text.push(d);
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text,
                line,
                col,
                in_test: false,
            });
        } else {
            toks.push(Tok {
                kind: TokKind::Punct(c),
                text: String::new(),
                line,
                col,
                in_test: false,
            });
            i += 1;
        }
    }
    toks
}

/// Whether the attribute token slice (between `[` and `]`) enables the
/// test cfg: contains the identifier `test` not wrapped in `not(…)`.
fn attr_enables_test(attr: &[Tok]) -> bool {
    for (j, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            let negated = j >= 2 && attr[j - 1].is_punct('(') && attr[j - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Marks every token inside a test region (`#[cfg(test)]` / `#[test]`
/// item bodies, inline `mod tests { .. }`) with `in_test = true`.
fn mark_test_regions(tokens: &mut [Tok]) {
    let n = tokens.len();
    let mut depth: i64 = 0;
    // Depth at which the innermost active test region opened; tokens
    // are test code while this is set. `i64::MAX` marks "rest of file"
    // (an inner `#![cfg(test)]`).
    let mut region_at: Option<i64> = None;
    let mut pending_attr = false;

    let mut i = 0usize;
    while i < n {
        if let Some(start_depth) = region_at {
            tokens[i].in_test = true;
            match tokens[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth <= start_depth {
                        region_at = None;
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        // Attribute? `#[…]` (outer) or `#![…]` (inner).
        if tokens[i].is_punct('#') {
            let mut j = i + 1;
            let inner = j < n && tokens[j].is_punct('!');
            if inner {
                j += 1;
            }
            if j < n && tokens[j].is_punct('[') {
                // Collect to the matching `]`.
                let mut k = j + 1;
                let mut brackets = 1i64;
                while k < n && brackets > 0 {
                    match tokens[k].kind {
                        TokKind::Punct('[') => brackets += 1,
                        TokKind::Punct(']') => brackets -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let attr = &tokens[j + 1..k.saturating_sub(1)];
                if attr_enables_test(attr) {
                    if inner {
                        // `#![cfg(test)]`: the whole enclosing scope —
                        // conservatively, the rest of the file.
                        for t in tokens[i..].iter_mut() {
                            t.in_test = true;
                        }
                        return;
                    }
                    pending_attr = true;
                }
                i = k;
                continue;
            }
        }

        // Inline `mod tests { … }` without an attribute.
        if tokens[i].is_ident("mod")
            && i + 2 < n
            && tokens[i + 1].is_ident("tests")
            && tokens[i + 2].is_punct('{')
        {
            tokens[i].in_test = true;
            tokens[i + 1].in_test = true;
            region_at = Some(depth);
            // A `#[cfg(test)]` attribute on this mod is consumed by it.
            pending_attr = false;
            i += 2; // The `{` is handled by the region branch above.
            continue;
        }

        match tokens[i].kind {
            TokKind::Punct('{') => {
                if pending_attr {
                    // The attributed item's body starts here.
                    tokens[i].in_test = true;
                    region_at = Some(depth);
                    pending_attr = false;
                    depth += 1;
                } else {
                    depth += 1;
                }
            }
            TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(';') => {
                // `#[cfg(test)] use …;` — an item with no body ends the
                // attribute's reach. (The `use` itself is marked.)
                pending_attr = false;
            }
            _ => {
                if pending_attr {
                    tokens[i].in_test = true;
                }
            }
        }
        i += 1;
    }
}

/// Parses a `lint:allow(<rule-id>): <reason>` waiver out of one line's
/// comment text.
fn parse_waiver(line: u32, text: &str) -> Option<Waiver> {
    let at = text.find("lint:allow(")?;
    let rest = &text[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    // Only well-formed kebab-case ids are waivers; anything else (e.g.
    // prose like `lint:allow(<rule-id>)` in documentation) is ignored.
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return None;
    }
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim())
        .filter(|r| !r.is_empty())
        .map(|r| r.to_string());
    Some(Waiver { rule, line, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(scan: &FileScan) -> Vec<&str> {
        scan.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan(
            "let x = \"HashMap in a string\"; // HashMap in a comment\n\
             /* HashMap in /* a nested */ block */ let y = 1;\n\
             let z = r#\"HashMap raw \" quote\"#;\n",
        );
        assert!(!idents(&s).contains(&"HashMap"));
        assert!(idents(&s).contains(&"let"));
    }

    #[test]
    fn raw_string_hash_counts_must_match() {
        let s = scan("let a = r##\"one \"# not closed here\"##; let HashMap = 1;\n");
        assert!(idents(&s).contains(&"HashMap"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_lex() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'z'; let q = '\\n'; }");
        let ids = idents(&s);
        assert!(ids.contains(&"a"), "lifetime name still lexes: {ids:?}");
        // The char literal payloads never become tokens.
        assert!(!ids.contains(&"z"));
        assert!(!ids.contains(&"n"));
    }

    #[test]
    fn cfg_test_region_covers_the_item_body() {
        let s = scan(
            "fn live() { a(); }\n\
             #[cfg(test)]\nmod tests {\n  fn t() { b(); }\n}\n\
             fn live2() { c(); }\n",
        );
        let by_name = |n: &str| s.tokens.iter().find(|t| t.is_ident(n)).expect(n).in_test;
        assert!(!by_name("a"));
        assert!(by_name("b"));
        assert!(!by_name("c"));
    }

    #[test]
    fn test_attr_with_trailing_attrs_and_fn() {
        let s = scan("#[test]\n#[ignore]\nfn t() { dbg(); }\nfn live() { ok(); }\n");
        let by_name = |n: &str| s.tokens.iter().find(|t| t.is_ident(n)).expect(n).in_test;
        assert!(by_name("dbg"));
        assert!(!by_name("ok"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let s = scan("#[cfg(not(test))]\nfn live() { a(); }\n");
        let a = s.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        assert!(!a.in_test);
    }

    #[test]
    fn cfg_test_use_item_does_not_leak() {
        let s = scan("#[cfg(test)]\nuse x::y;\nfn live() { a(); }\n");
        let a = s.tokens.iter().find(|t| t.is_ident("a")).unwrap();
        assert!(!a.in_test);
    }

    #[test]
    fn inline_mod_tests_is_a_region() {
        let s = scan("mod tests { fn t() { b(); } }\nfn live() { c(); }\n");
        let by_name = |n: &str| s.tokens.iter().find(|t| t.is_ident(n)).expect(n).in_test;
        assert!(by_name("b"));
        assert!(!by_name("c"));
    }

    #[test]
    fn waiver_parses_with_and_without_reason() {
        let s = scan(
            "let a = 1; // lint:allow(hash-collections): keyed iteration is sorted first\n\
             let b = 2; // lint:allow(sleep)\n\
             let c = 3; // lint:allow(sleep):   \n",
        );
        assert_eq!(s.waivers.len(), 3);
        assert_eq!(s.waivers[0].rule, "hash-collections");
        assert!(s.waivers[0].reason.is_some());
        assert!(s.waivers[1].reason.is_none());
        assert!(s.waivers[2].reason.is_none());
    }

    #[test]
    fn multi_line_waiver_reasons_join_their_comment_block() {
        let s = scan(
            "// lint:allow(lossy-cast): the first half of the reason\n\
             // and the second half of it\n\
             let x = big as u8;\n",
        );
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(
            s.waivers[0].reason.as_deref(),
            Some("the first half of the reason and the second half of it")
        );
        // A trailing waiver on a code line does not absorb the comment
        // below it.
        let s = scan(
            "let x = big as u8; // lint:allow(lossy-cast): complete reason\n\
             // unrelated next comment\n",
        );
        assert_eq!(s.waivers[0].reason.as_deref(), Some("complete reason"));
    }

    #[test]
    fn prose_mentions_of_the_waiver_syntax_are_not_waivers() {
        let s = scan("//! write `lint:allow(<rule-id>): <reason>` above the line\n");
        assert!(s.waivers.is_empty());
    }

    #[test]
    fn code_lines_distinguish_comment_only_lines() {
        let s = scan("// only a comment\nlet x = 1;\n\n");
        assert!(!s.code_lines[0]);
        assert!(s.code_lines[1]);
    }
}
