//! The engine: walk the configured scopes, scan each file once, apply
//! the applicable rule families, and resolve waivers.
//!
//! Output order is deterministic (files sorted, hits in source order),
//! so two runs over the same tree produce byte-identical reports.

use crate::config::Config;
use crate::rules;
use crate::scan::{scan, FileScan};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding: a rule hit plus its waiver resolution.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule id.
    pub rule: String,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of the hit.
    pub message: String,
    /// The trimmed source line, for context.
    pub snippet: String,
    /// Whether an inline waiver with a reason covers this hit.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}{}",
            self.file,
            self.line,
            self.col,
            self.rule,
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}

/// A whole run's report.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived or not, in (file, line, col) order.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a reasoned waiver — what fails the run.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Whether the tree is clean (every finding waived).
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none()
    }
}

/// Which rule families apply to one file.
#[derive(Clone, Copy, Default)]
struct Families {
    determinism: bool,
    panic_policy: bool,
    wire_safety: bool,
    meta_root: bool,
}

/// Runs the configured lint over the workspace at `root`.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    // Build the file → families map first (BTreeMap: sorted, stable).
    let mut files: BTreeMap<String, Families> = BTreeMap::new();

    for name in &config.determinism_crates {
        for file in crate_src_files(root, name)? {
            files.entry(file).or_default().determinism = true;
        }
    }
    for name in &config.panic_crates {
        for file in crate_src_files(root, name)? {
            files.entry(file).or_default().panic_policy = true;
        }
    }
    for file in &config.wire_files {
        if !root.join(file).is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("[wire-safety] file not found: {file}"),
            ));
        }
        files.entry(file.clone()).or_default().wire_safety = true;
    }
    for name in &config.meta_crates {
        let src = root.join("crates").join(name).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("[meta] crate not found: crates/{name}/src"),
            ));
        }
        for leaf in ["lib.rs", "main.rs"] {
            if src.join(leaf).is_file() {
                let rel = format!("crates/{name}/src/{leaf}");
                files.entry(rel).or_default().meta_root = true;
            }
        }
    }
    for file in &config.meta_roots {
        if !root.join(file).is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("[meta] root file not found: {file}"),
            ));
        }
        files.entry(file.clone()).or_default().meta_root = true;
    }

    let mut report = Report::default();
    for (file, families) in &files {
        let text = fs::read_to_string(root.join(file))?;
        let file_scan = scan(&text);

        let mut hits = Vec::new();
        if families.determinism {
            rules::determinism(&file_scan, &mut hits);
        }
        if families.panic_policy {
            rules::panic_policy(&file_scan, &mut hits);
        }
        if families.wire_safety {
            rules::wire_safety(&file_scan, &mut hits);
        }
        if families.meta_root {
            rules::forbid_unsafe(&file_scan, &mut hits);
        }
        hits.sort_by_key(|h| (h.line, h.col));

        let mut used = vec![false; file_scan.waivers.len()];
        for hit in hits {
            let (waived, reason) = resolve_waiver(&file_scan, hit.rule, hit.line, &mut used);
            report.findings.push(Finding {
                rule: hit.rule.to_string(),
                file: file.clone(),
                line: hit.line,
                col: hit.col,
                message: hit.message,
                snippet: snippet(&file_scan, hit.line),
                waived,
                reason,
            });
        }

        // Waiver hygiene: a malformed waiver (no reason) or one that
        // matched nothing is itself a finding — stale or typo'd
        // waivers must not silently accumulate.
        for (w, used) in file_scan.waivers.iter().zip(&used) {
            if w.reason.is_none() {
                report.findings.push(Finding {
                    rule: "waiver-syntax".to_string(),
                    file: file.clone(),
                    line: w.line,
                    col: 1,
                    message: format!(
                        "waiver for `{}` is missing its mandatory `: <reason>`",
                        w.rule
                    ),
                    snippet: snippet(&file_scan, w.line),
                    waived: false,
                    reason: None,
                });
            } else if !*used {
                report.findings.push(Finding {
                    rule: "unused-waiver".to_string(),
                    file: file.clone(),
                    line: w.line,
                    col: 1,
                    message: format!("waiver for `{}` matches no finding here", w.rule),
                    snippet: snippet(&file_scan, w.line),
                    waived: false,
                    reason: None,
                });
            }
        }
        report.files_scanned += 1;
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Looks for a reasoned waiver covering `rule` at `line`: on the line
/// itself, or in the contiguous block of comment-only lines directly
/// above it. Marks the waiver used.
fn resolve_waiver(
    file_scan: &FileScan,
    rule: &str,
    line: u32,
    used: &mut [bool],
) -> (bool, Option<String>) {
    let mut candidate_lines = vec![line];
    let mut l = line;
    while l > 1 {
        l -= 1;
        let comment_only = !file_scan
            .code_lines
            .get(l as usize - 1)
            .copied()
            .unwrap_or(false)
            && !file_scan
                .lines
                .get(l as usize - 1)
                .map(|s| s.trim().is_empty())
                .unwrap_or(true);
        if comment_only {
            candidate_lines.push(l);
        } else {
            break;
        }
    }
    for (idx, w) in file_scan.waivers.iter().enumerate() {
        if w.rule == rule && candidate_lines.contains(&w.line) {
            if let Some(reason) = &w.reason {
                used[idx] = true;
                return (true, Some(reason.clone()));
            }
        }
    }
    (false, None)
}

fn snippet(file_scan: &FileScan, line: u32) -> String {
    file_scan
        .lines
        .get(line as usize - 1)
        .map(|s| s.trim().to_string())
        .unwrap_or_default()
}

/// All `.rs` files under `crates/<name>/src`, workspace-relative,
/// sorted.
fn crate_src_files(root: &Path, name: &str) -> io::Result<Vec<String>> {
    let src = root.join("crates").join(name).join("src");
    if !src.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("crate not found: crates/{name}/src"),
        ));
    }
    let mut out = Vec::new();
    let mut stack = vec![src.clone()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Serializes findings as a JSON array (hand-rolled — no deps).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let reason = match &f.reason {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
             \"message\":\"{}\",\"snippet\":\"{}\",\"waived\":{},\"reason\":{}}}{}\n",
            esc(&f.rule),
            esc(&f.file),
            f.line,
            f.col,
            esc(&f.message),
            esc(&f.snippet),
            f.waived,
            reason,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_controls() {
        let f = Finding {
            rule: "x".into(),
            file: "a\"b".into(),
            line: 1,
            col: 2,
            message: "tab\there".into(),
            snippet: "s".into(),
            waived: true,
            reason: Some("why \\ because".into()),
        };
        let json = to_json(&[f]);
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("why \\\\ because"));
        assert!(json.ends_with(']'));
    }

    #[test]
    fn empty_findings_serialize() {
        assert_eq!(to_json(&[]), "[\n]");
    }
}
