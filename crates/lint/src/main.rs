//! `cyclesteal-lint` — walk the workspace, enforce `lint.toml`, exit
//! nonzero on any unwaived finding.
//!
//! ```text
//! cargo run -p cyclesteal-lint [-- --json] [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: `0` clean (every finding waived), `1` unwaived findings,
//! `2` usage/config/I-O error.

// The findings report is this binary's product.
#![allow(clippy::print_stdout)]
#![forbid(unsafe_code)]

use cyclesteal_lint::{run, to_json, Config};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    root: PathBuf,
    config: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: PathBuf::from("."),
        config: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--help" | "-h" => {
                return Err("usage: cyclesteal-lint [--json] [--root DIR] [--config FILE]".into());
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cyclesteal-lint: cannot read {}: {e}",
                config_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cyclesteal-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cyclesteal-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut out = String::new();
    if args.json {
        out.push_str(&to_json(&report.findings));
        out.push('\n');
    } else {
        use std::fmt::Write as _;
        for f in &report.findings {
            let _ = writeln!(out, "{f}");
            if let Some(reason) = &f.reason {
                let _ = writeln!(out, "    waiver: {reason}");
            } else if !f.waived {
                let _ = writeln!(out, "    | {}", f.snippet);
            }
        }
        let waived = report.findings.iter().filter(|f| f.waived).count();
        let unwaived = report.findings.len() - waived;
        let _ = writeln!(
            out,
            "cyclesteal-lint: {} file(s) scanned, {} finding(s) ({} waived, {} unwaived)",
            report.files_scanned,
            report.findings.len(),
            waived,
            unwaived
        );
    }
    // One write, errors tolerated: `cyclesteal-lint | head` closing the
    // pipe early must not turn a finished scan into a panic — the exit
    // code below is the contract, the text is advisory.
    let _ = std::io::stdout().write_all(out.as_bytes());

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
