//! `lint.toml` loading — a minimal, hand-rolled TOML subset.
//!
//! The engine is zero-dependency by constraint (no registry access), so
//! the config format is the subset of TOML the rule table actually
//! needs: `[section]` headers, `key = "string"`, `key = true|false`,
//! and (possibly multi-line) `key = ["a", "b", …]` string arrays.
//! Anything else is a hard error — a config typo must fail the run, not
//! silently lint nothing.
//!
//! ```toml
//! # Which crates the determinism family covers.
//! [determinism]
//! crates = ["core", "dp", "adversary", "sim", "workloads", "par"]
//!
//! [panic-policy]
//! crates = ["serve", "store", "lint"]
//!
//! [wire-safety]
//! files = ["crates/serve/src/wire.rs", "crates/store/src/lib.rs"]
//!
//! [meta]
//! crates = ["core", "dp"]
//! roots = ["src/lib.rs"]
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parse/validation failure, with the offending line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the config file (0 for file-level errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    StrArray(Vec<String>),
}

/// The lint configuration: which crates/files each rule family covers.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Crates whose non-test `src/` code the determinism family scans.
    pub determinism_crates: Vec<String>,
    /// Crates whose non-test `src/` code the panic-policy family scans.
    pub panic_crates: Vec<String>,
    /// Workspace-relative files the wire-safety (lossy-cast) rule scans.
    pub wire_files: Vec<String>,
    /// Crates whose roots (`src/lib.rs` / `src/main.rs`) must carry
    /// `#![forbid(unsafe_code)]`.
    pub meta_crates: Vec<String>,
    /// Extra workspace-relative crate-root files for the meta rule
    /// (e.g. the root package's `src/lib.rs`).
    pub meta_roots: Vec<String>,
}

impl Config {
    /// Parses a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let tables = parse_tables(text)?;
        let mut cfg = Config::default();
        for (section, entries) in &tables {
            match section.as_str() {
                "determinism" => {
                    cfg.determinism_crates = take_array(entries, section, "crates")?;
                    expect_only(entries, section, &["crates"])?;
                }
                "panic-policy" => {
                    cfg.panic_crates = take_array(entries, section, "crates")?;
                    expect_only(entries, section, &["crates"])?;
                }
                "wire-safety" => {
                    cfg.wire_files = take_array(entries, section, "files")?;
                    expect_only(entries, section, &["files"])?;
                }
                "meta" => {
                    cfg.meta_crates = take_array(entries, section, "crates")?;
                    cfg.meta_roots = match entries.get("roots") {
                        Some((v, line)) => as_array(v, *line, section, "roots")?,
                        None => Vec::new(),
                    };
                    expect_only(entries, section, &["crates", "roots"])?;
                }
                other => {
                    return Err(ConfigError {
                        line: 0,
                        message: format!(
                            "unknown section [{other}] (expected determinism, \
                             panic-policy, wire-safety or meta)"
                        ),
                    });
                }
            }
        }
        Ok(cfg)
    }
}

type Tables = BTreeMap<String, BTreeMap<String, (Value, u32)>>;

fn take_array(
    entries: &BTreeMap<String, (Value, u32)>,
    section: &str,
    key: &str,
) -> Result<Vec<String>, ConfigError> {
    match entries.get(key) {
        Some((v, line)) => as_array(v, *line, section, key),
        None => Err(ConfigError {
            line: 0,
            message: format!("section [{section}] is missing `{key} = [..]`"),
        }),
    }
}

fn as_array(v: &Value, line: u32, section: &str, key: &str) -> Result<Vec<String>, ConfigError> {
    match v {
        Value::StrArray(a) => Ok(a.clone()),
        _ => Err(ConfigError {
            line,
            message: format!("[{section}] {key} must be an array of strings"),
        }),
    }
}

fn expect_only(
    entries: &BTreeMap<String, (Value, u32)>,
    section: &str,
    allowed: &[&str],
) -> Result<(), ConfigError> {
    for (key, (_, line)) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(ConfigError {
                line: *line,
                message: format!("unknown key `{key}` in section [{section}]"),
            });
        }
    }
    Ok(())
}

/// Parses the raw `[section]` / `key = value` structure.
fn parse_tables(text: &str) -> Result<Tables, ConfigError> {
    let mut tables: Tables = BTreeMap::new();
    let mut section: Option<String> = None;

    let lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(lines[idx]);
        let trimmed = line.trim();
        idx += 1;
        if trimmed.is_empty() {
            continue;
        }
        if let Some(name) = trimmed.strip_prefix('[') {
            let name = name.strip_suffix(']').ok_or(ConfigError {
                line: line_no,
                message: "unterminated [section] header".into(),
            })?;
            let name = name.trim().to_string();
            if tables.contains_key(&name) {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("duplicate section [{name}]"),
                });
            }
            tables.insert(name.clone(), BTreeMap::new());
            section = Some(name);
            continue;
        }
        let Some((key, rest)) = trimmed.split_once('=') else {
            return Err(ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got `{trimmed}`"),
            });
        };
        let key = key.trim().to_string();
        // Accumulate a multi-line array until brackets balance.
        let mut value_text = rest.trim().to_string();
        while value_text.starts_with('[') && !brackets_balanced(&value_text) {
            let Some(next) = lines.get(idx) else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("unterminated array for key `{key}`"),
                });
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
            idx += 1;
        }
        let value = parse_value(&value_text, line_no)?;
        let Some(ref sec) = section else {
            return Err(ConfigError {
                line: line_no,
                message: format!("key `{key}` appears before any [section]"),
            });
        };
        let entries = tables.get_mut(sec).ok_or(ConfigError {
            line: line_no,
            message: "internal: section vanished".into(),
        })?;
        if entries.insert(key.clone(), (value, line_no)).is_some() {
            return Err(ConfigError {
                line: line_no,
                message: format!("duplicate key `{key}` in [{sec}]"),
            });
        }
    }
    Ok(tables)
}

/// Drops a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(text: &str, line: u32) -> Result<Value, ConfigError> {
    let t = text.trim();
    if t == "true" {
        return Ok(Value::Bool(true));
    }
    if t == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_string(t) {
        return Ok(Value::Str(s));
    }
    if let Some(inner) = t.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let s = parse_string(part).ok_or(ConfigError {
                line,
                message: format!("array item `{part}` is not a quoted string"),
            })?;
            items.push(s);
        }
        return Ok(Value::StrArray(items));
    }
    Err(ConfigError {
        line,
        message: format!("unsupported value `{t}` (string, bool or string array)"),
    })
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

fn parse_string(t: &str) -> Option<String> {
    let inner = t.strip_prefix('"')?.strip_suffix('"')?;
    // No escapes in paths/crate names; reject embedded quotes.
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[determinism]
crates = ["dp", "sim"] # trailing comment

[panic-policy]
crates = [
    "serve",
    "store",
]

[wire-safety]
files = ["crates/serve/src/wire.rs"]

[meta]
crates = ["dp"]
roots = ["src/lib.rs"]
"#;

    #[test]
    fn parses_the_full_schema() {
        let cfg = Config::parse(GOOD).expect("parses");
        assert_eq!(cfg.determinism_crates, ["dp", "sim"]);
        assert_eq!(cfg.panic_crates, ["serve", "store"]);
        assert_eq!(cfg.wire_files, ["crates/serve/src/wire.rs"]);
        assert_eq!(cfg.meta_crates, ["dp"]);
        assert_eq!(cfg.meta_roots, ["src/lib.rs"]);
    }

    #[test]
    fn unknown_section_is_an_error() {
        let err = Config::parse("[nonsense]\ncrates = []\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = Config::parse("[determinism]\ncrates = []\nfoo = \"x\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn missing_required_key_is_an_error() {
        let err = Config::parse("[determinism]\n").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn bad_value_reports_its_line() {
        let err = Config::parse("[determinism]\ncrates = 17\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_section_rejected() {
        let err = Config::parse("[meta]\ncrates=[]\n[meta]\ncrates=[]\n").unwrap_err();
        assert!(err.message.contains("duplicate section"));
    }
}
