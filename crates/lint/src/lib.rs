//! # cyclesteal-lint
//!
//! A registry-less invariant lint engine for the workspace: a
//! lightweight, comment/string-aware Rust source scanner that enforces
//! the repo's *static* invariants — the properties the dynamic
//! property suites can only sample:
//!
//! * **determinism** — the solver/simulation crates must be free of
//!   wall clocks, sleeps, iteration-order-unstable collections and
//!   unseeded randomness, so the bit-identical `W^(p)[L]` contract is
//!   a property of the source tree, not just of the tested seeds;
//! * **panic-policy** — the serving/storage crates answer every
//!   request with a value or a typed error, never a panic (the PR 6
//!   chaos contract), so `.unwrap()`-class escapes are banned in their
//!   production paths;
//! * **wire-safety** — the encode/decode modules must use checked
//!   conversions: a narrowing `as` cast can silently wrap a length or
//!   a tick count on the wire;
//! * **meta** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Scopes come from the workspace-root `lint.toml` (see
//! [`config::Config`]); intentional exceptions are inline waivers —
//! `// lint:allow(<rule-id>): <reason>` with a **mandatory** reason —
//! and stale or reasonless waivers are themselves findings. Test code
//! (`#[cfg(test)]` / `#[test]` / inline `mod tests`) is exempt from
//! every rule.
//!
//! The `cyclesteal-lint` binary walks the tree, prints `file:line:col`
//! findings (or `--json`), and exits nonzero on any unwaived finding —
//! the CI `static-analysis` job. Rule catalogue and rationale:
//! `docs/INVARIANTS.md`.
//!
//! Like `WorkerPool` and the CRC module, the whole engine is
//! hand-rolled with zero dependencies: this build environment has no
//! registry access.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use engine::{run, to_json, Finding, Report};
