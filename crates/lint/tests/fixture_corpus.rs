//! Fixture-based self-tests: each fixture is a miniature workspace
//! (its own `lint.toml` + `crates/…` tree) under `tests/fixtures/`,
//! run through the library engine exactly as the binary would run it.

use cyclesteal_lint::{run, Config};
use std::path::PathBuf;

fn fixture(name: &str) -> cyclesteal_lint::Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml reads");
    let config = Config::parse(&config_text).expect("fixture lint.toml parses");
    run(&root, &config).expect("fixture scan runs")
}

/// `(rule, line, waived)` triples, in report order.
fn shape(report: &cyclesteal_lint::Report) -> Vec<(String, u32, bool)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.waived))
        .collect()
}

#[test]
fn determinism_rules_fire_once_per_site() {
    let report = fixture("determinism");
    assert_eq!(
        shape(&report),
        [
            ("hash-collections".to_string(), 2, false),
            ("wall-clock".to_string(), 3, false),
            ("wall-clock".to_string(), 6, false),
            ("sleep".to_string(), 7, false),
            ("hash-collections".to_string(), 11, false),
            ("unseeded-rng".to_string(), 12, false),
        ]
    );
    assert!(!report.clean());
}

#[test]
fn panic_policy_rules_fire_once_per_site() {
    let report = fixture("panic");
    assert_eq!(
        shape(&report),
        [
            ("panic-unwrap".to_string(), 3, false),
            ("panic-unwrap".to_string(), 4, false),
            ("panic-macro".to_string(), 6, false),
            ("panic-macro".to_string(), 9, false),
            ("panic-macro".to_string(), 10, false),
        ]
    );
}

#[test]
fn wire_safety_flags_only_narrowing_casts() {
    let report = fixture("wire");
    assert_eq!(
        shape(&report),
        [
            ("lossy-cast".to_string(), 5, false),
            ("lossy-cast".to_string(), 6, false),
            ("lossy-cast".to_string(), 7, false),
        ]
    );
}

#[test]
fn waivers_honor_reasons_and_report_hygiene() {
    let report = fixture("waiver");
    assert_eq!(
        shape(&report),
        [
            // Same-line waiver and comment-line-above waiver both hold.
            ("panic-unwrap".to_string(), 3, true),
            ("panic-unwrap".to_string(), 5, true),
            // A reasonless waiver waives nothing and is a finding
            // itself (col 1, so it sorts first on the shared line)…
            ("waiver-syntax".to_string(), 11, false),
            ("panic-unwrap".to_string(), 11, false),
            // …as is a stale waiver.
            ("unused-waiver".to_string(), 15, false),
        ]
    );
    let reasons: Vec<_> = report
        .findings
        .iter()
        .filter_map(|f| f.reason.as_deref())
        .collect();
    assert_eq!(
        reasons,
        [
            "fixture same-line waiver",
            "fixture waiver from the comment line above"
        ]
    );
    assert!(!report.clean());
}

#[test]
fn test_regions_are_exempt_from_every_rule() {
    let report = fixture("testcode");
    // Only the live HashMap parameter is a finding; everything inside
    // #[cfg(test)] / #[test] / the cfg(test) use item is exempt.
    assert_eq!(shape(&report), [("hash-collections".to_string(), 2, false)]);
}

#[test]
fn strings_and_comments_never_hit() {
    let report = fixture("strings");
    assert_eq!(
        shape(&report),
        [("hash-collections".to_string(), 22, false)]
    );
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let report = fixture("meta");
    assert_eq!(
        shape(&report),
        [
            ("forbid-unsafe".to_string(), 1, false),
            ("forbid-unsafe".to_string(), 1, false),
        ]
    );
    let files: Vec<_> = report.findings.iter().map(|f| f.file.as_str()).collect();
    assert_eq!(
        files,
        ["crates/bad/src/lib.rs", "crates/good/src/extra_root.rs"]
    );
}

#[test]
fn reports_are_deterministic_across_runs() {
    let a = fixture("waiver");
    let b = fixture("waiver");
    assert_eq!(
        cyclesteal_lint::to_json(&a.findings),
        cyclesteal_lint::to_json(&b.findings)
    );
}

#[test]
fn missing_scope_targets_are_hard_errors() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/meta");
    let config = Config::parse("[determinism]\ncrates = [\"no-such-crate\"]\n").expect("parses");
    assert!(run(&root, &config).is_err());
}
