// Fixture: every panic-policy pattern, plus the non-hits.
fn hits(a: Option<u32>, b: Result<u32, ()>) -> u32 {
    let x = a.unwrap();
    let y = b.expect("present");
    if x > y {
        panic!("boom");
    }
    match x {
        0 => unreachable!(),
        1 => todo!(),
        _ => x + y,
    }
}

fn not_hits(a: Option<u32>, b: Result<u32, u32>) -> u32 {
    // unwrap_* / expect_err variants and panic-path *mentions* are fine.
    let x = a.unwrap_or(0) + a.unwrap_or_else(|| 1) + a.unwrap_or_default();
    let y = b.expect_err("err side");
    let _hook = std::panic::take_hook();
    x + y
}
