// Fixture: one hit per determinism pattern, in line order.
use std::collections::HashMap;
use std::time::SystemTime;

fn clocky() -> u64 {
    let _t = Instant::now();
    thread::sleep(core::time::Duration::from_millis(1));
    7
}

fn setty(s: HashSet<u32>) -> usize {
    let r = thread_rng();
    let _ = r;
    s.len()
}

// Signature-only Instant and seeded RNG construction are fine.
fn not_hits(deadline: Option<Instant>, seed: u64) -> Option<Instant> {
    let _rng = SmallRng::seed_from_u64(seed);
    deadline
}
