// Fixture: narrowing casts hit; widening casts and renames do not.
use foo as bar;

fn encode(len: usize, ticks: u64, level: u16) -> Vec<u8> {
    let a = len as u32; // hit
    let b = ticks as i64; // hit
    let c = level as u8; // hit
    let wide = len as u64; // not a hit: widening on 64-bit targets
    let idx = ticks as usize; // not a hit (documented platform floor)
    let f = len as f64; // not a hit: reporting only
    bar(a, b, c, wide, idx, f)
}
