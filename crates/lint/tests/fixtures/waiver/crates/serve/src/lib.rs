// Fixture: waiver resolution in all four shapes.
fn waived(a: Option<u32>) -> u32 {
    let x = a.unwrap(); // lint:allow(panic-unwrap): fixture same-line waiver
    // lint:allow(panic-unwrap): fixture waiver from the comment line above
    let y = a.unwrap();
    x + y
}

fn reasonless(a: Option<u32>) -> u32 {
    // A waiver without a reason waives nothing and is itself a finding.
    a.unwrap() // lint:allow(panic-unwrap)
}

fn stale() -> u32 {
    // lint:allow(panic-macro): nothing on the next line matches this rule
    41 + 1
}
