//! Fixture: patterns inside strings and comments never hit.
//! Docs may say HashMap, Instant::now(), .unwrap() or panic! freely.

// thread::sleep in a line comment.
/* SystemTime in a block comment,
   /* nested: HashSet and todo!() */
   still a comment */

fn strings() -> (String, String, String, &'static [u8]) {
    let s = "HashMap::new() and x.unwrap() in a string".to_string();
    let r = r#"raw: Instant::now() and panic!("x")"#.to_string();
    let h = r##"hashier raw: "# thread_rng() "##.to_string();
    let b = b"bytes: unreachable!()";
    (s, r, h, b)
}

fn chars_and_lifetimes<'a>(x: &'a str) -> (char, &'a str) {
    let c = '"'; // a quote char literal must not open a string
    (c, x)
}

fn one_real_hit(m: HashMap<u32, u32>) -> usize {
    m.len()
}
