// Fixture: rule patterns inside test regions are exempt.
fn live(m: HashMap<u32, u32>) -> usize {
    m.len()
}

#[cfg(test)]
use std::collections::HashSet;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_everything_forbidden() {
        let m: HashMap<u32, u32> = HashMap::new();
        let s: HashSet<u32> = HashSet::new();
        let t = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(m.is_empty() && s.is_empty());
        let _ = t;
        let v: Option<u32> = Some(1);
        v.unwrap();
        if false {
            panic!("test-only");
        }
    }
}

#[test]
fn top_level_test_fn() {
    let x: Option<u32> = None;
    let _ = x.unwrap_or(0);
    let _t = SystemTime::now();
}

mod tests_like {
    // Not named `tests` exactly — but clean anyway.
    pub fn helper() -> u32 {
        2
    }
}
