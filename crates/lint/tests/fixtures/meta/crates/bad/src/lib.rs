//! Fixture: a crate root without `forbid(unsafe_code)`.
//! Mentioning #![forbid(unsafe_code)] in docs must not count.
#![warn(missing_docs)]

pub fn nope() -> u32 {
    3
}
