// Fixture: an extra root listed via [meta] roots, missing the attr.
pub fn no_forbid_here() -> u32 {
    2
}
