//! Fixture: a compliant crate root.
#![forbid(unsafe_code)]

pub fn ok() -> u32 {
    1
}
