//! Persistence property tests: `load(save(table))` must be
//! **bit-identical** to the original (structural `PartialEq`, which
//! covers the skeleton representation byte for byte) across both
//! [`RowRepr`] variants, solve inner loops, thread counts and the
//! degenerate lifespans `L ∈ {0, 1 tick, large}` — and every corruption
//! of the byte stream (truncation, bit-flips, wrong version) must come
//! back as an error, never a panic and never a silently different
//! table.

use cyclesteal_core::time::secs;
use cyclesteal_dp::compressed::CompressedTable;
use cyclesteal_dp::{InnerLoop, RowRepr, SolveOptions};
use cyclesteal_store::{from_bytes, load, save, to_bytes, StoreError};
use proptest::prelude::*;

fn solve(
    q: u32,
    max_u: f64,
    p: u32,
    repr: RowRepr,
    inner: InnerLoop,
    threads: usize,
) -> CompressedTable {
    CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(max_u),
        p,
        SolveOptions {
            keep_policy: false,
            inner,
            repr,
            threads,
        },
    )
}

fn reprs() -> [RowRepr; 2] {
    [RowRepr::Breakpoints, RowRepr::Runs]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Round trip over randomized grids, representations, inner loops
    /// and thread counts.
    #[test]
    fn round_trip_is_bit_identical(
        q in 2u32..12,
        max_u in 1.0f64..80.0,
        p in 0u32..4,
        threads in 1usize..4,
    ) {
        for repr in reprs() {
            for inner in [InnerLoop::FrontierSweep, InnerLoop::EventDriven] {
                let table = solve(q, max_u, p, repr, inner, threads);
                let back = from_bytes(&to_bytes(&table))
                    .expect("clean snapshot must decode");
                prop_assert_eq!(&table, &back,
                    "round trip at q={}, repr={:?}, inner={:?}, threads={}",
                    q, repr, inner, threads);
            }
        }
    }

    /// Every single-byte corruption of a snapshot errors — the CRCs and
    /// structural validation leave no byte whose flip goes unnoticed or
    /// panics the decoder.
    #[test]
    fn every_bit_flip_is_rejected(q in 2u32..10, max_u in 5.0f64..40.0, p in 1u32..3) {
        for repr in reprs() {
            let bytes = to_bytes(&solve(q, max_u, p, repr, InnerLoop::EventDriven, 1));
            let stride = (bytes.len() / 97).max(1);
            for pos in (0..bytes.len()).step_by(stride) {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << (pos % 8);
                prop_assert!(from_bytes(&bad).is_err(),
                    "flip at byte {} of {} went unnoticed ({:?})", pos, bytes.len(), repr);
            }
        }
    }

    /// Every truncation errors, from the empty file up to one byte
    /// short of complete.
    #[test]
    fn every_truncation_is_rejected(q in 2u32..10, max_u in 5.0f64..40.0, p in 1u32..3) {
        let bytes = to_bytes(&solve(q, max_u, p, RowRepr::Runs, InnerLoop::EventDriven, 1));
        let stride = (bytes.len() / 61).max(1);
        for cut in (0..bytes.len()).step_by(stride).chain([bytes.len() - 1]) {
            prop_assert!(from_bytes(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes went unnoticed", cut, bytes.len());
        }
    }
}

#[test]
fn degenerate_lifespans_round_trip() {
    // L = 0 (a single all-zero state per level), L = 1 tick (still
    // inside every zero region), and a large-L run-compressed table.
    for repr in reprs() {
        for (q, max_u, p) in [(8u32, 0.0f64, 2u32), (8, 0.125, 2), (16, 4000.0, 3)] {
            for inner in [InnerLoop::FrontierSweep, InnerLoop::EventDriven] {
                let table = solve(q, max_u, p, repr, inner, 2);
                let back = from_bytes(&to_bytes(&table)).unwrap();
                assert_eq!(table, back, "q={q} max_u={max_u} p={p} {repr:?} {inner:?}");
            }
        }
    }
}

#[test]
fn thread_count_does_not_leak_into_the_snapshot() {
    // The solve is bit-identical across thread counts, so snapshots
    // must be byte-identical too — a warm start may be consumed by a
    // machine with a different worker count.
    for repr in reprs() {
        let reference = to_bytes(&solve(8, 300.0, 3, repr, InnerLoop::EventDriven, 1));
        for threads in [2, 8] {
            let other = to_bytes(&solve(8, 300.0, 3, repr, InnerLoop::EventDriven, threads));
            assert_eq!(reference, other, "threads={threads} {repr:?}");
        }
    }
}

#[test]
fn wrong_version_is_rejected_with_the_version_error() {
    let mut bytes = to_bytes(&solve(8, 50.0, 2, RowRepr::Runs, InnerLoop::EventDriven, 1));
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        from_bytes(&bytes),
        Err(StoreError::UnsupportedVersion(2))
    ));
}

#[test]
fn file_round_trip_and_queries_survive() {
    let dir = std::env::temp_dir().join(format!("cyclesteal-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let table = solve(16, 2000.0, 3, RowRepr::Runs, InnerLoop::EventDriven, 1);
    let path = dir.join("t.cst");
    save(&table, &path).unwrap();
    let back = load(&path).unwrap();
    assert_eq!(table, back);
    // The restored table answers every query the original answers.
    for p in 0..=3u32 {
        for l in [0, 1, 17, 1000, table.max_ticks()] {
            assert_eq!(table.value_ticks(p, l), back.value_ticks(p, l));
            if l > 0 {
                assert_eq!(
                    table.first_period_ticks(p, l),
                    back.first_period_ticks(p, l)
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
