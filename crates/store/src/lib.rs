//! # cyclesteal-store
//!
//! Versioned, checksummed binary snapshots of solved
//! [`CompressedTable`]s — the persistence layer that lets a restarted
//! process **warm-start** from disk instead of re-paying the solve. A
//! run-backed `(Q=32, p=16, L=10⁹ ticks)` table is ~16 MB on disk and
//! loads in tens of milliseconds; the solve it replaces takes on the
//! order of a second.
//!
//! ## Format
//!
//! A snapshot is a little-endian byte stream:
//!
//! ```text
//! magic      8 B   b"CYCSTORE"
//! version    u32   FORMAT_VERSION (readers reject anything newer/older)
//! header     section
//! row        section × row_count        (one per interrupt level)
//! ```
//!
//! Every **section** is `len: u32`, `payload: len bytes`,
//! `crc: u32` (CRC-32/IEEE of the payload — see [`crc::crc32`]), so
//! truncation and bit corruption are detected per section before any of
//! the payload is interpreted. The header payload records the grid
//! (`setup_bits`, `ticks_per_setup`), extent (`max_ticks`,
//! `max_interrupts`), row representation and build-event counter; each
//! row payload stores its skeleton **natively** — flat-tick lists as
//! raw `i64`s, run-backed rows as `(start, step_fx, len, has_residuals)`
//! descriptors plus the shared residual byte stream, exactly mirroring
//! [`cyclesteal_dp::snapshot::RowParts`]. Nothing is re-encoded, so
//! `load(save(t))` is **bit-identical** to `t` (structural equality,
//! pinned by the property suite in `tests/store_props.rs`).
//!
//! Decoding is defensive end to end: unknown magic, unsupported
//! versions, truncated sections, checksum mismatches and structurally
//! invalid parts (the validation of
//! [`CompressedTable::from_parts`]) all return [`StoreError`] — never a
//! panic, never a silently wrong table.
//!
//! ## Cache warm-start
//!
//! [`CacheSnapshotExt`] extends [`TableCache`] with directory-level
//! persistence: [`CacheSnapshotExt::snapshot_to_dir`] writes every
//! cached compressed table (atomically: temp file + rename) under a
//! key-derived name, [`CacheSnapshotExt::warm_from_dir`] loads every
//! `*.cst` snapshot back and
//! [`TableCache::admit_compressed`]s it, so the next
//! `get_compressed` covering query is a hit instead of a solve.
//! [`evict_hook_to_dir`] packages the same save as a
//! [`cyclesteal_dp::EvictHook`], which is how `cyclesteal-serve`
//! snapshots tables the memory budget pushes out.
//!
//! ```no_run
//! use cyclesteal_core::time::secs;
//! use cyclesteal_dp::TableCache;
//! use cyclesteal_store::CacheSnapshotExt;
//!
//! let dir = std::path::Path::new("snapshots");
//! let cache = TableCache::new();
//! let _ = cache.get_compressed(secs(1.0), 32, secs(1e6), 16); // cold solve
//! cache.snapshot_to_dir(dir).unwrap();
//! // …process restarts…
//! let cache = TableCache::new();
//! let report = cache.warm_from_dir(dir).unwrap();
//! assert_eq!(report.loaded, 1);
//! let _ = cache.get_compressed(secs(1.0), 32, secs(1e6), 16); // warm hit
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod crc;

use cyclesteal_core::time::Time;
use cyclesteal_dp::compressed::CompressedTable;
use cyclesteal_dp::snapshot::{PartsError, RowParts, RunParts, TableParts};
use cyclesteal_dp::{RowRepr, TableCache};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"CYCSTORE";

/// Snapshot format version this build writes and reads. Readers reject
/// any other version outright — the format is versioned precisely so a
/// newer layout can never be misparsed as this one.
pub const FORMAT_VERSION: u32 = 1;

/// File extension of directory snapshots (`q…-p…-s….cst`).
pub const SNAPSHOT_EXTENSION: &str = "cst";

/// Row-payload tag: flat-tick list skeleton.
const TAG_FLATS: u8 = 0;
/// Row-payload tag: arithmetic-run skeleton.
const TAG_RUNS: u8 = 1;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file is a snapshot of an unknown format version.
    UnsupportedVersion(u32),
    /// The byte stream ended (or a section length pointed) before the
    /// named piece was complete.
    Truncated(&'static str),
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Which section failed ("header", or "row N").
        section: String,
    },
    /// A field holds a value the format does not admit (unknown row
    /// tag, impossible count, non-finite setup, …).
    Malformed(String),
    /// The decoded parts failed [`CompressedTable::from_parts`]'s
    /// structural validation.
    Invalid(PartsError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            StoreError::BadMagic => write!(f, "not a cyclesteal snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            StoreError::Truncated(what) => write!(f, "snapshot truncated reading {what}"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "snapshot corrupt: checksum mismatch in {section}")
            }
            StoreError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
            StoreError::Invalid(e) => write!(f, "snapshot decodes to an invalid table: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<PartsError> for StoreError {
    fn from(e: PartsError) -> StoreError {
        StoreError::Invalid(e)
    }
}

// ---- encoding ---------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends one framed section: `len`, payload, CRC-32 of the payload.
fn push_section(out: &mut Vec<u8>, payload: &[u8]) {
    // lint:allow(lossy-cast): a section wraps u32 only past half a
    // billion breakpoints in one row, far beyond any table the
    // compressor emits — and a wrapped length cannot misparse silently,
    // the CRC framing makes an oversized section fail closed at load
    push_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
    push_u32(out, crc::crc32(payload));
}

fn encode_row(row: &RowParts) -> Vec<u8> {
    let mut p = Vec::new();
    match row {
        RowParts::Flats { zero_until, flats } => {
            p.push(TAG_FLATS);
            push_i64(&mut p, *zero_until);
            push_u64(&mut p, flats.len() as u64);
            p.reserve(flats.len() * 8);
            for &f in flats {
                push_i64(&mut p, f);
            }
        }
        RowParts::Runs {
            zero_until,
            runs,
            residuals,
        } => {
            p.push(TAG_RUNS);
            push_i64(&mut p, *zero_until);
            push_u64(&mut p, runs.len() as u64);
            push_u64(&mut p, residuals.len() as u64);
            p.reserve(runs.len() * 21 + residuals.len());
            for r in runs {
                push_i64(&mut p, r.start);
                push_i64(&mut p, r.step_fx);
                push_u32(&mut p, r.len);
                p.push(u8::from(r.has_residuals));
            }
            for &b in residuals {
                // lint:allow(lossy-cast): two's-complement byte
                // reinterpret of the i8 residual, inverted by the
                // matching `as i8` in decode_row
                p.push(b as u8);
            }
        }
    }
    p
}

/// Serializes a table into the snapshot byte format.
pub fn to_bytes(table: &CompressedTable) -> Vec<u8> {
    let parts = table.to_parts();
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_VERSION);

    let mut header = Vec::with_capacity(41);
    push_u64(&mut header, parts.setup.get().to_bits());
    push_u32(&mut header, parts.ticks_per_setup);
    push_u32(&mut header, parts.max_interrupts);
    push_i64(&mut header, parts.max_ticks);
    header.push(match parts.repr {
        RowRepr::Breakpoints => TAG_FLATS,
        RowRepr::Runs => TAG_RUNS,
    });
    push_u64(&mut header, parts.events);
    // lint:allow(lossy-cast): the row count is max_interrupts + 1 and
    // max_interrupts is itself a u32 header field two lines up
    push_u32(&mut header, parts.rows.len() as u32);
    push_section(&mut out, &header);

    for row in &parts.rows {
        push_section(&mut out, &encode_row(row));
    }
    out
}

// ---- decoding ---------------------------------------------------------

/// Bounds-checked forward reader over the snapshot bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(StoreError::Truncated(what))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self, what: &'static str) -> Result<i64, StoreError> {
        let b = self.take(8, what)?;
        // Exact inverse of push_i64's to_le_bytes — negative values
        // round-trip without any integer cast.
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Reads one framed section and verifies its CRC before handing the
/// payload out.
fn read_section<'a>(r: &mut Reader<'a>, section: &str) -> Result<&'a [u8], StoreError> {
    let len = r.u32("section length")? as usize;
    let payload = r.take(len, "section payload")?;
    let stored = r.u32("section checksum")?;
    if crc::crc32(payload) != stored {
        return Err(StoreError::ChecksumMismatch {
            section: section.to_string(),
        });
    }
    Ok(payload)
}

fn decode_row(payload: &[u8], level: usize) -> Result<RowParts, StoreError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let tag = r.u8("row tag")?;
    let zero_until = r.i64("row zero_until")?;
    let row = match tag {
        TAG_FLATS => {
            let count = r.u64("flat count")? as usize;
            // The count must match the section exactly: a corrupt count
            // is caught before any allocation larger than the payload.
            let bytes = r.take(
                count.checked_mul(8).ok_or(StoreError::Truncated("flats"))?,
                "flat ticks",
            )?;
            let flats = bytes
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect();
            RowParts::Flats { zero_until, flats }
        }
        TAG_RUNS => {
            let run_count = r.u64("run count")? as usize;
            let res_count = r.u64("residual count")? as usize;
            let run_bytes = r.take(
                run_count
                    .checked_mul(21)
                    .ok_or(StoreError::Truncated("runs"))?,
                "run descriptors",
            )?;
            let runs = run_bytes
                .chunks_exact(21)
                .map(|c| RunParts {
                    start: i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]),
                    step_fx: i64::from_le_bytes([
                        c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15],
                    ]),
                    len: u32::from_le_bytes([c[16], c[17], c[18], c[19]]),
                    has_residuals: c[20] != 0,
                })
                .collect();
            let residuals = r
                .take(res_count, "residual stream")?
                .iter()
                // lint:allow(lossy-cast): inverse of encode_row's
                // `as u8` — the same two's-complement byte reinterpret
                .map(|&b| b as i8)
                .collect();
            RowParts::Runs {
                zero_until,
                runs,
                residuals,
            }
        }
        other => {
            return Err(StoreError::Malformed(format!(
                "unknown row tag {other} at level {level}"
            )))
        }
    };
    if !r.done() {
        return Err(StoreError::Malformed(format!(
            "trailing bytes in row section at level {level}"
        )));
    }
    Ok(row)
}

/// Deserializes a snapshot byte stream back into the exact table it was
/// written from. Every defect — wrong magic, unsupported version,
/// truncation, checksum mismatch, structural invalidity — is an error,
/// never a panic.
pub fn from_bytes(bytes: &[u8]) -> Result<CompressedTable, StoreError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(8, "magic")? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }

    let header = read_section(&mut r, "header")?;
    let mut h = Reader {
        buf: header,
        pos: 0,
    };
    // Validate *before* constructing a Time: `Time::new` asserts
    // finiteness, and a crafted (or 2⁻³²-lucky corrupt) header must
    // error here, never panic.
    let setup_raw = f64::from_bits(h.u64("setup")?);
    if !setup_raw.is_finite() {
        return Err(StoreError::Malformed(format!(
            "non-finite setup charge {setup_raw}"
        )));
    }
    let setup = Time::new(setup_raw);
    let ticks_per_setup = h.u32("ticks_per_setup")?;
    let max_interrupts = h.u32("max_interrupts")?;
    let max_ticks = h.i64("max_ticks")?;
    let repr = match h.u8("repr")? {
        TAG_FLATS => RowRepr::Breakpoints,
        TAG_RUNS => RowRepr::Runs,
        other => return Err(StoreError::Malformed(format!("unknown repr tag {other}"))),
    };
    let events = h.u64("events")?;
    let row_count = h.u32("row count")?;
    if !h.done() {
        return Err(StoreError::Malformed("trailing bytes in header".into()));
    }
    if row_count != max_interrupts.saturating_add(1) {
        return Err(StoreError::Malformed(format!(
            "row count {row_count} does not match max_interrupts {max_interrupts}"
        )));
    }

    let mut rows = Vec::new();
    for level in 0..row_count as usize {
        let payload = read_section(&mut r, &format!("row {level}"))?;
        rows.push(decode_row(payload, level)?);
    }
    if !r.done() {
        return Err(StoreError::Malformed(
            "trailing bytes after last row".into(),
        ));
    }

    Ok(CompressedTable::from_parts(TableParts {
        setup,
        ticks_per_setup,
        max_ticks,
        max_interrupts,
        repr,
        events,
        rows,
    })?)
}

// ---- files and directories -------------------------------------------

/// Test-only save fault: consulted once per write attempt; returning
/// `true` makes that attempt fail with an injected I/O error (see
/// [`set_save_fault`]).
type SaveFault = Box<dyn Fn(&Path) -> bool + Send + Sync>;

static SAVE_FAULT_ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn save_fault_slot() -> &'static std::sync::Mutex<Option<SaveFault>> {
    static SLOT: std::sync::OnceLock<std::sync::Mutex<Option<SaveFault>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| std::sync::Mutex::new(None))
}

/// Installs (or, with `None`, removes) a **test-only** fault hook
/// consulted once per [`save`] write attempt; a `true` return fails
/// that attempt with an injected I/O error. This is how the
/// fault-injection harness in `cyclesteal-serve` exercises the save
/// retry and the snapshot-on-evict failure path. Disarmed, the hook
/// costs one relaxed atomic load per save.
#[doc(hidden)]
pub fn set_save_fault(hook: Option<SaveFault>) {
    let armed = hook.is_some();
    *save_fault_slot().lock().unwrap_or_else(|e| e.into_inner()) = hook;
    SAVE_FAULT_ARMED.store(armed, std::sync::atomic::Ordering::Release);
}

fn save_fault_fires(path: &Path) -> bool {
    if !SAVE_FAULT_ARMED.load(std::sync::atomic::Ordering::Acquire) {
        return false;
    }
    save_fault_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .is_some_and(|hook| hook(path))
}

/// Write attempts [`save`] makes before giving up: the first try plus
/// `SAVE_RETRIES` retries with a short doubling backoff. Snapshot saves
/// sit off the serving path (evictions, shutdown), so a few retries
/// against transient I/O (fd pressure, a busy volume) are cheap
/// insurance; persistent failures still surface as the last error.
pub const SAVE_RETRIES: u32 = 2;

/// Writes `table` to `path` atomically: the bytes land in a temp file
/// in the same directory first, are fsynced, and are `rename`d into
/// place — so a concurrent reader or a process crash can never observe
/// a half-written snapshot, and a power loss cannot persist the rename
/// ahead of the data. (The directory entry itself is not fsynced; after
/// a power loss the file may be absent entirely, which a warm start
/// treats as "not snapshotted yet" and simply re-solves.) The temp name
/// carries a process-wide counter on top of the pid, so concurrent
/// savers of the *same* key (e.g. the evict hook racing a periodic
/// snapshot) each write their own temp file and the rename stays whole.
///
/// Transient I/O failures are retried ([`SAVE_RETRIES`] retries, 1 ms
/// doubling backoff); the final error is returned if every attempt
/// fails.
pub fn save(table: &CompressedTable, path: &Path) -> Result<(), StoreError> {
    let bytes = to_bytes(table);
    // The first attempt seeds `last`, so the retry loop never has an
    // empty error slot to unwrap at the end.
    let mut last: io::Error = match save_attempt(&bytes, path) {
        Ok(()) => return Ok(()),
        Err(e) => e,
    };
    for attempt in 1..=SAVE_RETRIES {
        std::thread::sleep(std::time::Duration::from_millis(1 << (attempt - 1)));
        match save_attempt(&bytes, path) {
            Ok(()) => return Ok(()),
            Err(e) => last = e,
        }
    }
    Err(last.into())
}

/// One atomic temp-write + rename attempt.
fn save_attempt(bytes: &[u8], path: &Path) -> io::Result<()> {
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    if save_fault_fires(path) {
        return Err(io::Error::other("injected store write failure"));
    }
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp{}-{seq}", std::process::id()));
    let write = |tmp: &Path| -> io::Result<()> {
        let mut file = std::fs::File::create(tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()
    };
    match write(&tmp).and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads the snapshot at `path` back into the exact table it was saved
/// from (see [`from_bytes`] for the failure modes).
pub fn load(path: &Path) -> Result<CompressedTable, StoreError> {
    from_bytes(&std::fs::read(path)?)
}

/// The key-derived file name a table snapshots under inside a snapshot
/// directory: one file per `(setup, resolution, p_max)` cache key, so a
/// re-solve at a larger lifespan overwrites its predecessor instead of
/// accumulating stale siblings.
pub fn snapshot_file_name(table: &CompressedTable) -> String {
    format!(
        "q{}-p{}-s{:016x}.{SNAPSHOT_EXTENSION}",
        table.grid().q(),
        table.max_interrupts(),
        table.grid().setup().get().to_bits()
    )
}

/// What [`CacheSnapshotExt::warm_from_dir`] found.
#[derive(Debug, Default)]
pub struct WarmReport {
    /// Snapshots loaded, validated and admitted into the cache.
    pub loaded: usize,
    /// Snapshot files whose *read* failed (I/O error), with why. The
    /// failure may be transient (permissions, fd pressure), so the file
    /// is left in place for the next warm start. A warm start never
    /// fails wholesale because one file rotted — the table is simply
    /// re-solved on first use.
    pub skipped: Vec<(PathBuf, StoreError)>,
    /// Snapshot files whose *bytes* are provably bad (wrong magic,
    /// unsupported version, truncation, checksum mismatch, structural
    /// invalidity) and were quarantined: renamed with a `.corrupt`
    /// suffix so they stop matching the `*.cst` glob, keep their bytes
    /// for post-mortem, and never waste another warm start. The path
    /// recorded is the original (pre-rename) one.
    pub quarantined: Vec<(PathBuf, StoreError)>,
}

/// Directory-level persistence for [`TableCache`] — the warm-start
/// interface of the serving layer.
pub trait CacheSnapshotExt {
    /// Writes every cached compressed table into `dir` (created if
    /// missing), one atomic file per cache key. Returns how many were
    /// written.
    fn snapshot_to_dir(&self, dir: &Path) -> Result<usize, StoreError>;

    /// Loads every `*.cst` snapshot in `dir` and admits it into the
    /// cache, so covering `get_compressed` queries become hits instead
    /// of solves. A missing directory is an empty warm start; unreadable
    /// files are reported in [`WarmReport::skipped`] and provably
    /// corrupt ones are renamed `*.corrupt` and reported in
    /// [`WarmReport::quarantined`] — neither is fatal.
    fn warm_from_dir(&self, dir: &Path) -> Result<WarmReport, StoreError>;
}

impl CacheSnapshotExt for TableCache {
    fn snapshot_to_dir(&self, dir: &Path) -> Result<usize, StoreError> {
        std::fs::create_dir_all(dir)?;
        let tables = self.compressed_tables();
        for table in &tables {
            save(table, &dir.join(snapshot_file_name(table)))?;
        }
        Ok(tables.len())
    }

    fn warm_from_dir(&self, dir: &Path) -> Result<WarmReport, StoreError> {
        let mut report = WarmReport::default();
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXTENSION) {
                continue;
            }
            match load(&path) {
                Ok(table) => {
                    self.admit_compressed(Arc::new(table));
                    report.loaded += 1;
                }
                // An I/O failure may be transient: leave the file alone
                // and let the next warm start retry it.
                Err(e @ StoreError::Io(_)) => report.skipped.push((path, e)),
                // Anything else means the *bytes* are bad — the file
                // can never load. Quarantine it out of the `*.cst` glob
                // (best-effort; a failed rename degrades to a skip).
                Err(e) => {
                    if quarantine(&path).is_ok() {
                        report.quarantined.push((path, e));
                    } else {
                        report.skipped.push((path, e));
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Renames a provably corrupt snapshot by appending
/// [`QUARANTINE_SUFFIX`] to its file name (`rotten.cst` →
/// `rotten.cst.corrupt`), taking it out of the warm-start glob while
/// preserving the bytes for inspection.
pub fn quarantine(path: &Path) -> io::Result<()> {
    let mut name = path.as_os_str().to_os_string();
    name.push(QUARANTINE_SUFFIX);
    std::fs::rename(path, PathBuf::from(name))
}

/// Suffix appended to quarantined snapshot file names.
pub const QUARANTINE_SUFFIX: &str = ".corrupt";

/// Packages "save to `dir` on eviction" as a
/// [`cyclesteal_dp::EvictHook`] for
/// [`TableCache::set_evict_hook`]: every compressed table the memory
/// budget pushes out is snapshotted (best-effort — an I/O failure drops
/// the snapshot, never the serving path) before the cache forgets it.
pub fn evict_hook_to_dir(dir: PathBuf) -> cyclesteal_dp::EvictHook {
    evict_hook_to_dir_counting(dir, Arc::new(std::sync::atomic::AtomicU64::new(0)))
}

/// Like [`evict_hook_to_dir`], but every failed snapshot-on-evict write
/// bumps `failures` (and logs to stderr) instead of disappearing — the
/// serving layer surfaces the counter as
/// `BrokerStats.resilience.snapshot_failures`. The failure is *never*
/// propagated: the hook runs from [`TableCache`]'s eviction path, and
/// an error escaping there would trade a lost snapshot for a broken
/// cache.
pub fn evict_hook_to_dir_counting(
    dir: PathBuf,
    failures: Arc<std::sync::atomic::AtomicU64>,
) -> cyclesteal_dp::EvictHook {
    Box::new(move |table: &Arc<CompressedTable>| {
        let result = std::fs::create_dir_all(&dir)
            .map_err(StoreError::Io)
            .and_then(|()| save(table, &dir.join(snapshot_file_name(table))));
        if let Err(e) = result {
            failures.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            eprintln!("cyclesteal-store: snapshot-on-evict failed: {e}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;
    use cyclesteal_dp::{InnerLoop, SolveOptions};

    fn table(repr: RowRepr) -> CompressedTable {
        CompressedTable::solve_with(
            secs(1.0),
            8,
            secs(400.0),
            3,
            SolveOptions {
                keep_policy: false,
                inner: InnerLoop::EventDriven,
                repr,
                ..SolveOptions::default()
            },
        )
    }

    #[test]
    fn bytes_round_trip_bit_identically() {
        for repr in [RowRepr::Breakpoints, RowRepr::Runs] {
            let t = table(repr);
            let back = from_bytes(&to_bytes(&t)).unwrap();
            assert_eq!(t, back, "round trip at {repr:?}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = to_bytes(&table(RowRepr::Runs));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(from_bytes(&bad), Err(StoreError::BadMagic)));
        let mut bad = bytes.clone();
        bad[8] = 0xFE; // version LSB
        assert!(matches!(
            from_bytes(&bad),
            Err(StoreError::UnsupportedVersion(_))
        ));
        assert!(matches!(from_bytes(&[]), Err(StoreError::Truncated(_))));
    }

    #[test]
    fn non_finite_setup_with_a_valid_crc_errors_instead_of_panicking() {
        // Single-byte flips are always caught by the CRC; a *crafted*
        // header (NaN setup, CRC recomputed to match) must still come
        // back as Malformed — never reach Time::new's panic.
        let mut bytes = to_bytes(&table(RowRepr::Runs));
        // Layout: magic 8 + version 4 + header len 4, then the header
        // payload (setup bits first), then its CRC.
        let header_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        bytes[16..24].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let crc = crc::crc32(&bytes[16..16 + header_len]);
        let crc_at = 16 + header_len;
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn save_load_files_and_directories() {
        let dir = std::env::temp_dir().join(format!("cyclesteal-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = TableCache::new();
        let a = cache.get_compressed(secs(1.0), 8, secs(200.0), 2);
        let b = cache.get_compressed(secs(2.0), 4, secs(100.0), 1);
        assert_eq!(cache.snapshot_to_dir(&dir).unwrap(), 2);

        let warmed = TableCache::new();
        let report = warmed.warm_from_dir(&dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.skipped.is_empty());
        // Covering queries are now hits, and bit-identical to the solves.
        let wa = warmed.get_compressed(secs(1.0), 8, secs(200.0), 2);
        let wb = warmed.get_compressed(secs(2.0), 4, secs(100.0), 1);
        let s = warmed.stats();
        assert_eq!((s.hits, s.misses), (2, 0), "warm start skips the solve");
        assert_eq!(*wa, *a);
        assert_eq!(*wb, *b);

        // A corrupt file is quarantined (renamed `.corrupt`), not fatal.
        std::fs::write(dir.join("rotten.cst"), b"not a snapshot").unwrap();
        let partial = TableCache::new();
        let report = partial.warm_from_dir(&dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.skipped.is_empty());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, dir.join("rotten.cst"));
        assert!(!dir.join("rotten.cst").exists());
        assert!(dir.join("rotten.cst.corrupt").exists());

        // The quarantined file no longer matches the glob: the next warm
        // start is clean.
        let report = TableCache::new().warm_from_dir(&dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.skipped.is_empty());
        assert!(report.quarantined.is_empty());

        // A missing directory is an empty warm start.
        let report = TableCache::new()
            .warm_from_dir(&dir.join("does-not-exist"))
            .unwrap();
        assert_eq!(report.loaded, 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_hook_snapshots_what_the_budget_drops() {
        let dir = std::env::temp_dir().join(format!("cyclesteal-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = TableCache::new();
        cache.set_evict_hook(Some(evict_hook_to_dir(dir.clone())));
        let a = cache.get_compressed(secs(1.0), 8, secs(300.0), 2);
        cache.set_memory_budget(Some(1)); // evict everything
        assert_eq!(cache.stats().compressed_entries, 0);

        let warmed = TableCache::new();
        assert_eq!(warmed.warm_from_dir(&dir).unwrap().loaded, 1);
        let back = warmed.get_compressed(secs(1.0), 8, secs(300.0), 2);
        assert_eq!(warmed.stats().misses, 0);
        assert_eq!(*back, *a);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_retries_past_transient_injected_failures() {
        // NOTE: set_save_fault is process-global; this is the only unit
        // test in this crate that arms it, and it disarms before exiting.
        let dir = std::env::temp_dir().join(format!("cyclesteal-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = table(RowRepr::Runs);
        let path = dir.join(snapshot_file_name(&t));

        // Fail the first attempt only: the retry succeeds.
        let calls = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = calls.clone();
        set_save_fault(Some(Box::new(move |_| {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 0
        })));
        save(&t, &path).expect("retry rides past one transient failure");
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(load(&path).unwrap(), t);

        // Fail every attempt: the last error surfaces, no temp litter.
        set_save_fault(Some(Box::new(|_| true)));
        assert!(matches!(save(&t, &path), Err(StoreError::Io(_))));
        set_save_fault(None);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXTENSION))
            .collect();
        assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counting_evict_hook_counts_failures_without_propagating() {
        let dir =
            std::env::temp_dir().join(format!("cyclesteal-evict-count-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Make the directory path unusable: a *file* where the hook
        // wants a directory, so create_dir_all fails persistently.
        std::fs::write(&dir, b"in the way").unwrap();

        let failures = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hook = evict_hook_to_dir_counting(dir.clone(), failures.clone());
        let t = Arc::new(table(RowRepr::Runs));
        hook(&t); // must not panic
        hook(&t);
        assert_eq!(failures.load(std::sync::atomic::Ordering::Relaxed), 2);

        std::fs::remove_file(&dir).unwrap();
    }
}
