//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) with a
//! slicing-by-8 kernel, so checksumming a 16 MB snapshot costs
//! milliseconds instead of dominating a warm start. Tables are derived
//! at first use — no build scripts, no unsafe, no dependencies.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

/// 8 × 256 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[k]` advances a CRC by `k` additional zero bytes.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i as usize] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// The CRC-32 of `data` (initial value `!0`, final xor `!0` — the
/// standard zlib/PNG parameterization).
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut crc: u32 = !0;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation.
    fn crc32_reference(data: &[u8]) -> u32 {
        let mut crc: u32 = !0;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slicing_matches_reference_on_all_alignments() {
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(31) >> 2) as u8)
            .collect();
        for start in 0..8 {
            for end in [start, start + 1, start + 7, start + 64, data.len()] {
                let slice = &data[start..end.max(start)];
                assert_eq!(crc32(slice), crc32_reference(slice), "at {start}..{end}");
            }
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data: Vec<u8> = (0..255).collect();
        let clean = crc32(&data);
        for pos in (0..data.len()).step_by(17) {
            data[pos] ^= 0x10;
            assert_ne!(crc32(&data), clean, "flip at {pos} undetected");
            data[pos] ^= 0x10;
        }
    }
}
