//! Order-independent parallel reductions.
//!
//! Sweeps that only need an aggregate (a max, a histogram, an error sum)
//! use [`par_reduce`] instead of materializing every result. The merge
//! order is made deterministic by merging the per-worker accumulators in
//! worker-index order, so floating-point reductions reproduce bit-for-bit
//! across runs with the same thread count.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Folds every item into a per-worker accumulator (`init`/`fold`), then
/// merges the accumulators **in worker order** with `merge`.
///
/// Determinism contract: with a fixed `threads` and input, the result is
/// reproducible; with different `threads`, results may differ only by the
/// usual floating-point reassociation of `merge`.
pub fn par_reduce<T, A, I, F, M>(items: &[T], threads: usize, init: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &T) + Sync,
    M: Fn(A, A) -> A,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let mut acc = init();
        for item in items {
            fold(&mut acc, item);
        }
        return acc;
    }

    let chunk = crate::chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<A>>> = (0..threads).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (w, slot) in slots.iter().enumerate() {
            let cursor = &cursor;
            let init = &init;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = init();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for item in &items[start..(start + chunk).min(n)] {
                        fold(&mut acc, item);
                    }
                }
                *slot.lock() = Some(acc);
                let _ = w;
            });
        }
    });

    let mut merged: Option<A> = None;
    for slot in slots {
        let acc = slot
            .into_inner()
            .expect("worker always stores its accumulator");
        merged = Some(match merged {
            None => acc,
            Some(m) => merge(m, acc),
        });
    }
    merged.expect("at least one worker ran")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_sequential() {
        let items: Vec<u64> = (0..100_000).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1, 2, 7, 16] {
            let got = par_reduce(&items, threads, || 0u64, |acc, &x| *acc += x, |a, b| a + b);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn max_reduction() {
        let items: Vec<i32> = vec![3, -1, 42, 7, 42, 0];
        let got = par_reduce(
            &items,
            4,
            || i32::MIN,
            |acc, &x| *acc = (*acc).max(x),
            |a, b| a.max(b),
        );
        assert_eq!(got, 42);
    }

    #[test]
    fn empty_input_yields_init() {
        let items: Vec<u8> = vec![];
        let got = par_reduce(&items, 4, || 9u8, |_, _| {}, |a, _| a);
        assert_eq!(got, 9);
    }

    #[test]
    fn histogram_reduction_is_complete() {
        let items: Vec<usize> = (0..10_000).map(|i| i % 10).collect();
        let got = par_reduce(
            &items,
            8,
            || vec![0usize; 10],
            |acc, &x| acc[x] += 1,
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        assert_eq!(got, vec![1000; 10]);
    }
}
