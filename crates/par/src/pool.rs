//! A persistent worker pool for long-lived services.
//!
//! The scoped helpers in the crate root ([`crate::par_map_threads`],
//! [`crate::par_sweep_segments`]) spin threads up per call — right for
//! batch sweeps, wrong for a server that fields thousands of small
//! requests: per-request thread spawn latency would dominate the work.
//! [`WorkerPool`] keeps a fixed set of workers alive for the life of
//! the service (`cyclesteal-serve`'s broker owns one), feeding them
//! through a shared queue.
//!
//! Jobs are `'static` closures (the pool outlives any caller's stack
//! frame); [`WorkerPool::scatter`] adds the deterministic
//! collect-in-input-order contract of [`crate::par_map_threads`] on
//! top, so swapping a scoped fan-out for a pooled one never reorders
//! results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads fed by a shared
/// queue. Dropping the pool closes the queue and joins every worker
/// (pending jobs finish first).
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns `threads` workers (`0` resolves through
    /// [`crate::default_threads`], honoring `CYCLESTEAL_THREADS`).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = if threads == 0 {
            crate::default_threads()
        } else {
            threads
        };
        // Mutex<Receiver> rather than an MPMC channel because the
        // vendored crossbeam subset wraps std mpsc (single-consumer);
        // jobs here are coarse (whole solves), so the hand-off lock is
        // nowhere near the critical path.
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(parking_lot::Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || loop {
                    // Holding the lock while blocked on recv is the
                    // classic hand-off: the next idle worker queues on
                    // the mutex and takes the next job.
                    let job = match rx.lock().recv() {
                        Ok(job) => job,
                        Err(_) => break, // queue closed: pool dropped
                    };
                    // A panicking job must not kill the worker — the
                    // panic resurfaces at the caller waiting on the
                    // job's result channel instead (see `scatter`).
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            threads,
        }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues one fire-and-forget job.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive until drop")
            .send(Box::new(job))
            .expect("workers alive until drop");
    }

    /// Runs every job on the pool and returns the results **in input
    /// order** — the pooled counterpart of [`crate::par_map_threads`].
    /// The calling thread blocks until all jobs finish.
    ///
    /// Panics if a job panicked (the worker itself survives).
    pub fn scatter<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.spawn(move || {
                // Send after the job: a panic drops this sender, which
                // surfaces below as a missing result.
                let out = job();
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx.iter() {
            debug_assert!(slots[i].is_none(), "job {i} produced twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("pool job {i} panicked")))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue lets each worker's recv() fail and exit.
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..100u64).map(|i| move || i * i).collect();
        let out = pool.scatter(jobs);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..10u64 {
            let out = pool.scatter((0..8u64).map(|i| move || i + round).collect());
            assert_eq!(out, (0..8u64).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = WorkerPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..32 {
            let hits = hits.clone();
            let tx = tx.clone();
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 32);
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn zero_resolves_to_default_threads() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(
                (0..4u32)
                    .map(|i| move || if i == 2 { panic!("boom") } else { i })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(result.is_err(), "scatter must propagate the panic");
        // The workers survived: the next batch still completes.
        let out = pool.scatter((0..4u32).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drop_joins_after_pending_jobs() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let hits = hits.clone();
                pool.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // Drop joined the workers; every queued job ran.
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }
}
