//! # cyclesteal-par
//!
//! Small, deterministic parallel-sweep utilities used by the cyclesteal
//! benches and the simulator's Monte-Carlo harness.
//!
//! The workloads here are embarrassingly parallel (value-table solves and
//! game evaluations over a `(U/c, p)` parameter grid), so the machinery is
//! deliberately simple: scoped threads, an atomic chunk cursor for dynamic
//! load balancing, and a channel to collect `(index, result)` pairs so the
//! output order — and therefore every downstream report — is independent of
//! thread scheduling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod pool;
pub mod reduce;
pub mod sweep;

pub use pool::WorkerPool;

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads used by default: the `CYCLESTEAL_THREADS`
/// environment override when set to a positive integer, otherwise the
/// machine's available parallelism capped at 16 (the sweeps saturate
/// memory bandwidth well before that).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CYCLESTEAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Chunk size for the atomic work-claiming cursor: ~8 chunks per worker
/// on large inputs (load balance), but never finer than ~2 chunks per
/// worker on small ones — claiming single items would put every worker
/// on the cursor cache line between every item.
pub(crate) fn chunk_size(n: usize, threads: usize) -> usize {
    if n >= threads * 16 {
        n / (threads * 8)
    } else {
        n.div_ceil(threads * 2)
    }
    .max(1)
}

/// Applies `f` to every item of `items` on `threads` scoped workers and
/// returns the results **in input order**.
///
/// Items are claimed in chunks through an atomic cursor, so long-running
/// items do not serialize the sweep; the `(index, value)` channel restores
/// determinism regardless of which worker computed what.
///
/// Panics in `f` propagate to the caller when the scope joins.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<(usize, R)>(n);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, item) in items[start..end].iter().enumerate() {
                    // The channel is sized for every result; send cannot
                    // block or fail while the receiver lives.
                    let _ = tx.send((start + i, f(item)));
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.iter() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("index {i} never produced")))
        .collect()
}

/// Runs one closure invocation per *segment* on `threads` scoped
/// workers — the primitive behind the intra-level parallel `W^(p)[L]`
/// sweeps in `cyclesteal-dp`, where each segment owns a disjoint
/// `&mut` slice of the same row.
///
/// Unlike [`par_map_threads`] the segments are **consumed** (they
/// typically carry mutable slice borrows, which are `Send` but not
/// `Sync`) and nothing is returned: the work product is whatever `f`
/// wrote through the segment. Segments are claimed from a shared
/// queue, so a handful of uneven segments still balance; output
/// determinism is the *caller's* contract (disjoint segments ⇒ the
/// result is independent of which worker ran what).
///
/// Panics in `f` propagate to the caller when the scope joins.
pub fn par_sweep_segments<S, F>(segments: Vec<S>, threads: usize, f: F)
where
    S: Send,
    F: Fn(S) + Sync,
{
    let n = segments.len();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        segments.into_iter().for_each(f);
        return;
    }
    let queue = parking_lot::Mutex::new(segments.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Claim under the lock, run outside it.
                let Some(segment) = queue.lock().next() else {
                    break;
                };
                f(segment);
            });
        }
    });
}

/// Splits `0..len` into consecutive half-open ranges of at most `block`
/// items — the blocking scheme the batch simulator fans over a
/// [`WorkerPool`]. Consecutive, in-order blocks are what make a
/// block-parallel reduction independent of which worker ran what: block
/// `k` always covers the same indices, and a sequential merge in block
/// order is a sequential merge in item order.
///
/// # Panics
/// Panics if `block == 0`.
pub fn block_ranges(len: usize, block: usize) -> Vec<std::ops::Range<usize>> {
    assert!(block > 0, "block size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(block));
    let mut start = 0usize;
    while start < len {
        let end = (start + block).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// [`par_map_threads`] with [`default_threads`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = par_map(&items, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| x + 1).is_empty());
        assert_eq!(par_map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<i64> = (0..1234).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_threads(&items, threads, |x| x * 3), expect);
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let cost = |&x: &u64| {
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            (0..spin).fold(x, |a, b| a.wrapping_add(b % 13))
        };
        let out = par_map(&items, cost);
        let seq: Vec<u64> = items.iter().map(cost).collect();
        assert_eq!(out, seq);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map(&items, |&x| {
            if x == 57 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!(t >= 1);
    }

    #[test]
    fn sweep_segments_fill_disjoint_slices_deterministically() {
        for threads in [1, 2, 8] {
            let mut row = vec![0u64; 10_000];
            let mut segments: Vec<(usize, &mut [u64])> = Vec::new();
            let mut rest: &mut [u64] = &mut row;
            let mut offset = 0usize;
            while !rest.is_empty() {
                let take = rest.len().min(1337);
                let (seg, tail) = rest.split_at_mut(take);
                segments.push((offset, seg));
                offset += take;
                rest = tail;
            }
            par_sweep_segments(segments, threads, |(offset, seg): (usize, &mut [u64])| {
                for (i, slot) in seg.iter_mut().enumerate() {
                    *slot = ((offset + i) as u64) * 3 + 1;
                }
            });
            for (i, &v) in row.iter().enumerate() {
                assert_eq!(v, (i as u64) * 3 + 1, "slot {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn sweep_segments_empty_and_single() {
        par_sweep_segments(Vec::<u32>::new(), 4, |_| panic!("no segments"));
        let mut hit = std::sync::atomic::AtomicUsize::new(0);
        par_sweep_segments(vec![7u32], 4, |v| {
            assert_eq!(v, 7);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(*hit.get_mut(), 1);
    }

    #[test]
    #[should_panic]
    fn sweep_segment_panics_propagate() {
        par_sweep_segments(vec![0u32, 1, 2, 3], 2, |v| {
            if v == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn block_ranges_tile_the_index_space_exactly() {
        for (len, block) in [(0usize, 1usize), (1, 1), (10, 3), (12, 4), (5, 100)] {
            let ranges = block_ranges(len, block);
            let mut covered = 0usize;
            for r in &ranges {
                assert_eq!(r.start, covered, "blocks must be consecutive");
                assert!(r.end - r.start <= block);
                assert!(r.end > r.start, "no empty blocks");
                covered = r.end;
            }
            assert_eq!(covered, len);
            // Only the last block may be short.
            for r in ranges.iter().rev().skip(1) {
                assert_eq!(r.end - r.start, block);
            }
        }
    }

    #[test]
    #[should_panic]
    fn block_ranges_reject_zero_blocks() {
        let _ = block_ranges(10, 0);
    }

    #[test]
    fn chunk_size_never_degenerates_on_small_inputs() {
        // Small inputs: ~2 chunks per worker, not chunk=1 cursor thrash.
        assert_eq!(chunk_size(20, 8), 2);
        assert_eq!(chunk_size(16, 16), 1); // n == threads: 1 item each
        assert_eq!(chunk_size(48, 4), 6); // just under the cutover: 2/worker
                                          // Large inputs: ~8 chunks per worker for load balance.
        assert_eq!(chunk_size(6400, 8), 100);
        assert!(chunk_size(1, 16) >= 1);
    }
}
