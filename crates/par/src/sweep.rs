//! Parameter-grid helpers for the benches' `(U/c, p)` sweeps.

/// The cartesian product of two parameter axes, row-major (`xs` outer).
pub fn cartesian<X: Clone, Y: Clone>(xs: &[X], ys: &[Y]) -> Vec<(X, Y)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Geometrically spaced values `start, start·factor, …` up to and including
/// the last value not exceeding `end` (inclusive of `end` itself when the
/// progression lands within `1e-9` of it).
pub fn geometric(start: f64, end: f64, factor: f64) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && end >= start);
    let mut out = Vec::new();
    let mut v = start;
    while v <= end * (1.0 + 1e-12) {
        out.push(v);
        v *= factor;
    }
    out
}

/// `n` linearly spaced values covering `[start, end]` inclusive.
pub fn linear(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && end >= start);
    (0..n)
        .map(|i| start + (end - start) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_is_row_major() {
        let got = cartesian(&[1, 2], &["a", "b", "c"]);
        assert_eq!(
            got,
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }

    #[test]
    fn geometric_progression_covers_range() {
        let g = geometric(16.0, 1024.0, 2.0);
        assert_eq!(g, vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]);
    }

    #[test]
    fn linear_includes_endpoints() {
        let l = linear(0.0, 10.0, 5);
        assert_eq!(l, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    #[should_panic]
    fn geometric_rejects_bad_factor() {
        let _ = geometric(1.0, 10.0, 1.0);
    }
}
