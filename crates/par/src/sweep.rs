//! Parameter-grid helpers for the benches' `(U/c, p)` sweeps.

/// The cartesian product of two parameter axes, row-major (`xs` outer).
pub fn cartesian<X: Clone, Y: Clone>(xs: &[X], ys: &[Y]) -> Vec<(X, Y)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Geometrically spaced values `start, start·factor, …` up to and including
/// the last value not exceeding `end` (inclusive of `end` itself when the
/// progression lands within `1e-9` *relative* of it).
///
/// The endpoint tolerance is deliberately generous: `v` accumulates one
/// rounding per multiplication, so a long progression whose exact landing
/// point is `end` (computed by any other route — `powi`, a spec constant,
/// a sum) can drift several ulps past it. `1e-9` comfortably covers that
/// drift for any progression that fits in an `f64`; for factors so close
/// to 1 that a full step is smaller than that, the tolerance is clamped
/// to half a step so it can never admit a spurious extra value.
pub fn geometric(start: f64, end: f64, factor: f64) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && end >= start);
    let cutoff = end * (1.0 + 1e-9f64.min((factor - 1.0) / 2.0));
    let mut out = Vec::new();
    let mut v = start;
    while v <= cutoff {
        out.push(v);
        v *= factor;
    }
    out
}

/// `n` linearly spaced values covering `[start, end]` inclusive.
pub fn linear(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && end >= start);
    (0..n)
        .map(|i| start + (end - start) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_is_row_major() {
        let got = cartesian(&[1, 2], &["a", "b", "c"]);
        assert_eq!(
            got,
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }

    #[test]
    fn geometric_progression_covers_range() {
        let g = geometric(16.0, 1024.0, 2.0);
        assert_eq!(g, vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]);
    }

    #[test]
    fn linear_includes_endpoints() {
        let l = linear(0.0, 10.0, 5);
        assert_eq!(l, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    #[should_panic]
    fn geometric_rejects_bad_factor() {
        let _ = geometric(1.0, 10.0, 1.0);
    }

    #[test]
    fn geometric_long_progression_stays_below_end() {
        // 40 doublings from 1.0: every value ≤ end, nothing spurious past
        // it, and the progression is not cut short.
        let g = geometric(1.0, 1e12, 2.0);
        assert_eq!(g.len(), 40, "2^0..=2^39 fit below 1e12");
        assert_eq!(*g.last().unwrap(), (1u64 << 39) as f64);
        assert!(g.iter().all(|&v| v <= 1e12));
    }

    #[test]
    fn geometric_endpoint_within_documented_tolerance_is_kept() {
        // The progression lands 5e-10 (relative) above `end` — inside the
        // documented 1e-9 endpoint tolerance, outside the 1e-12 the code
        // used to apply. The landing value must be kept.
        let landing = 2f64.powi(40);
        let end = landing * (1.0 - 5e-10);
        let g = geometric(1.0, end, 2.0);
        assert_eq!(
            g.len(),
            41,
            "endpoint dropped despite being within 1e-9: last = {:?}",
            g.last()
        );
        assert_eq!(*g.last().unwrap(), landing);
    }

    #[test]
    fn geometric_fine_factor_never_oversteps_end() {
        // A factor within 1e-9 of 1: the endpoint tolerance shrinks to
        // half a step, so the progression can admit at most the landing
        // value (within half a step of `end`) — never the multi-value
        // tail a fixed 1e-9 cutoff would allow.
        let g = geometric(1.0, 1.0, 1.0 + 1e-10);
        assert_eq!(g, vec![1.0]);
        for factor in [1.0 + 1e-10, 1.0 + 3e-10, 1.0 + 8e-10] {
            let end = 1.0 + 2e-9;
            let g = geometric(1.0, end, factor);
            assert!(
                g.iter().all(|&v| v < end * factor),
                "value a full step past end at factor {factor}"
            );
            assert!(
                g.iter().filter(|&&v| v > end).count() <= 1,
                "more than the landing value past end at factor {factor}"
            );
        }
    }

    #[test]
    fn geometric_endpoint_far_outside_tolerance_is_dropped() {
        // 1e-6 relative past the endpoint is a genuine overshoot, not
        // rounding drift — it must stay excluded.
        let landing = 2f64.powi(40);
        let end = landing * (1.0 - 1e-6);
        let g = geometric(1.0, end, 2.0);
        assert_eq!(g.len(), 40);
    }
}
