//! The per-step period-accounting kernel.
//!
//! One period of §2.2's game has exactly four arithmetic facts: the
//! epsilon guard below which a residual cannot host a period, the work a
//! completed period banks (`t ⊖ c`), the setup charge it pays, and the
//! lifespan slice an owner interrupt destroys. The scalar event-driven
//! engine ([`crate::NowSim`]) and the struct-of-arrays batch loop
//! ([`crate::batch::BatchSim`]) must agree on these *bit for bit* — so
//! they are defined once here, as free functions over plain scalars, and
//! both simulators call them in the same order. The continuum (`f64`)
//! forms serve the event engine; the tick (`i64`) forms serve the batch
//! loop, where the grid makes every quantity exact.

use cyclesteal_core::time::{Time, Work};

/// The engine's "too small to matter" guard: residuals and periods at or
/// below this are treated as exhausted. Scales with the setup charge so
/// coarse and fine grids degrade identically.
#[inline]
pub fn eps(setup: Time) -> Time {
    setup * 1e-9
}

/// Work banked by a period of length `period_len` that ran to
/// completion: `t ⊖ c` (the paper's banked output for one period).
#[inline]
pub fn banked(period_len: Time, setup: Time) -> Work {
    period_len.pos_sub(setup)
}

/// The setup charge actually paid by a completed period (a period
/// shorter than `c` pays only itself).
#[inline]
pub fn setup_paid(period_len: Time, setup: Time) -> Time {
    period_len.min(setup)
}

/// Whether an owner arrival at usable time `at_usable` lands strictly
/// inside the period `[usable_start, usable_start + period_len)` — the
/// half-open window semantics both simulators share: an arrival exactly
/// at the period boundary lets the period complete.
#[inline]
pub fn lands_inside(at_usable: Time, usable_start: Time, period_len: Time) -> bool {
    at_usable < usable_start + period_len
}

/// The slice of usable lifespan a killed period consumed: the elapsed
/// time from period start to the interrupt, clamped into
/// `[0, period_len]`.
#[inline]
pub fn interrupt_elapsed(at_usable: Time, usable_start: Time, period_len: Time) -> Time {
    (at_usable - usable_start).clamp_min_zero().min(period_len)
}

/// Tick-grid form of [`banked`]: a completed period of `t` ticks banks
/// `(t − q)⁺` work ticks, where `q` is the setup charge in ticks. Exact
/// integer arithmetic — the batch loop's ground truth.
#[inline]
pub fn banked_ticks(t: i64, q: i64) -> i64 {
    (t - q).max(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn continuum_and_tick_banking_agree_on_the_grid() {
        // On a tick grid with q ticks per setup, the two forms are the
        // same number (scaled by the tick length).
        let setup = secs(1.0);
        let q = 4i64;
        let tick = secs(1.0 / q as f64);
        for t in 0..64i64 {
            let cont = banked(tick * t as f64, setup);
            let ticks = banked_ticks(t, q);
            assert_eq!(cont.get(), ticks as f64 * tick.get(), "t = {t}");
        }
    }

    #[test]
    fn interrupt_window_is_half_open() {
        let start = secs(10.0);
        let len = secs(5.0);
        assert!(lands_inside(secs(14.999), start, len));
        assert!(!lands_inside(secs(15.0), start, len));
        assert_eq!(interrupt_elapsed(secs(12.0), start, len), secs(2.0));
        // Clamped on both sides.
        assert_eq!(interrupt_elapsed(secs(3.0), start, len), secs(0.0));
        assert_eq!(interrupt_elapsed(secs(99.0), start, len), len);
    }

    #[test]
    fn short_periods_pay_only_themselves() {
        assert_eq!(setup_paid(secs(0.25), secs(1.0)), secs(0.25));
        assert_eq!(setup_paid(secs(7.0), secs(1.0)), secs(1.0));
        assert_eq!(banked(secs(0.25), secs(1.0)), Time::ZERO);
    }
}
