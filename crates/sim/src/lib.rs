//! # now-sim
//!
//! A deterministic discrete-event simulator for *networks of workstations*
//! under draconian cycle-stealing contracts — the executable counterpart
//! of the formal model in `cyclesteal-core`.
//!
//! A simulation holds a shared bag of indivisible data-parallel tasks and
//! any number of lender workstations, each with a contracted opportunity
//! `(U, c, p)`, an owner-activity trace, and a scheduling driver (adaptive
//! policy or committed non-adaptive schedule). The engine implements §2.2
//! of the paper exactly — setup charges, kill-on-interrupt, tail replay,
//! final consolidation — and additionally measures what the continuum
//! model abstracts away: task-quantization waste, owner busy spells
//! (wall-clock vs usable-lifespan time), bag exhaustion and contract
//! violations.
//!
//! ```
//! use cyclesteal_core::prelude::*;
//! use cyclesteal_workloads::{OwnerTrace, TaskBag, TaskDist};
//! use now_sim::{DriverKind, LenderConfig, NowSim};
//! use std::sync::Arc;
//!
//! let cfg = LenderConfig {
//!     name: "colleague-laptop".into(),
//!     opportunity: Opportunity::from_units(480.0, 2.0, 2),
//!     owner: OwnerTrace::poisson(7, 0.004, secs(480.0), 2, secs(30.0)),
//!     driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
//!     deadline: None,
//! };
//! let bag = TaskBag::generate_work(TaskDist::Uniform { lo: 0.5, hi: 2.0 }, secs(600.0), 1);
//! let report = NowSim::new(vec![cfg], bag).run().unwrap();
//! assert!(report.total_task_work().is_positive());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod driver;
pub mod engine;
pub mod kernel;
pub mod metrics;

pub use batch::{BatchAdversary, BatchConfig, BatchReport, BatchSim};
pub use driver::DriverKind;
pub use engine::{LenderConfig, NowSim};
pub use metrics::{DoneReason, LenderMetrics, SimReport};
