//! The borrower-side scheduling driver: turns an [`EpisodePolicy`] or a
//! committed non-adaptive schedule into a stream of period lengths,
//! honouring §2.2's semantics (adaptive re-planning after every interrupt;
//! oblivious tail replay with final consolidation for non-adaptive).

use cyclesteal_core::error::Result;
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::policy::EpisodePolicy;
use cyclesteal_core::schedule::EpisodeSchedule;
use cyclesteal_core::time::Time;
use std::collections::VecDeque;
use std::sync::Arc;

/// How a lender's work periods are scheduled.
#[derive(Clone)]
pub enum DriverKind {
    /// Re-plan an episode schedule from the residual `(p, L)` after every
    /// interrupt (the paper's adaptive discipline).
    Adaptive(Arc<dyn EpisodePolicy>),
    /// Commit this schedule up front; replay its tail after interrupts;
    /// after the `p`-th interrupt run the remainder as one long period.
    NonAdaptive(EpisodeSchedule),
}

impl std::fmt::Debug for DriverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverKind::Adaptive(p) => write!(f, "Adaptive({})", p.name()),
            DriverKind::NonAdaptive(s) => write!(f, "NonAdaptive({} periods)", s.len()),
        }
    }
}

/// Runtime state of one lender's driver.
pub(crate) enum DriverState {
    Adaptive {
        policy: Arc<dyn EpisodePolicy>,
        queue: VecDeque<Time>,
    },
    NonAdaptive {
        remaining: VecDeque<Time>,
    },
}

impl DriverState {
    pub(crate) fn new(kind: &DriverKind) -> DriverState {
        match kind {
            DriverKind::Adaptive(p) => DriverState::Adaptive {
                policy: p.clone(),
                queue: VecDeque::new(),
            },
            DriverKind::NonAdaptive(s) => DriverState::NonAdaptive {
                remaining: s.periods().iter().copied().collect(),
            },
        }
    }

    /// The next period to dispatch given the residual opportunity, or
    /// `None` when the discipline has nothing left to run.
    pub(crate) fn next_period(&mut self, residual: &Opportunity) -> Result<Option<Time>> {
        match self {
            DriverState::Adaptive { policy, queue } => {
                if queue.is_empty() {
                    if !residual.lifespan().is_positive() {
                        return Ok(None);
                    }
                    let episode = policy.episode(residual)?;
                    queue.extend(episode.periods().iter().copied());
                }
                Ok(queue.pop_front().map(|t| t.min(residual.lifespan())))
            }
            DriverState::NonAdaptive { remaining } => {
                Ok(remaining.pop_front().map(|t| t.min(residual.lifespan())))
            }
        }
    }

    /// Notifies the driver that the in-flight period was killed by the
    /// owner. `budget_exhausted` is `true` when this was the `p`-th
    /// interrupt: the non-adaptive discipline then consolidates the whole
    /// remaining lifespan into one long period (§2.2's exception); the
    /// adaptive discipline discards its queued episode and will re-plan.
    pub(crate) fn on_interrupt(&mut self, residual: Time, budget_exhausted: bool) {
        match self {
            DriverState::Adaptive { queue, .. } => queue.clear(),
            DriverState::NonAdaptive { remaining } => {
                if budget_exhausted {
                    remaining.clear();
                    if residual.is_positive() {
                        remaining.push_back(residual);
                    }
                }
                // Otherwise: oblivious tail replay — keep `remaining` as is.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::prelude::*;

    #[test]
    fn adaptive_driver_replans_after_interrupt() {
        let kind = DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(4)));
        let mut st = DriverState::new(&kind);
        let opp = Opportunity::from_units(100.0, 1.0, 2);
        // First episode: 4 × 25.
        let t1 = st.next_period(&opp).unwrap().unwrap();
        assert_eq!(t1, secs(25.0));
        let t2 = st.next_period(&opp).unwrap().unwrap();
        assert_eq!(t2, secs(25.0));
        // Interrupted mid-second-period at consumed 30: re-plan over 70.
        st.on_interrupt(secs(70.0), false);
        let opp2 = Opportunity::from_units(70.0, 1.0, 1);
        let t3 = st.next_period(&opp2).unwrap().unwrap();
        assert_eq!(t3, secs(17.5));
    }

    #[test]
    fn nonadaptive_driver_replays_tail_then_consolidates() {
        let sched = EpisodeSchedule::from_periods(
            [30.0, 30.0, 20.0, 20.0].iter().map(|&x| secs(x)).collect(),
        )
        .unwrap();
        let kind = DriverKind::NonAdaptive(sched);
        let mut st = DriverState::new(&kind);
        let opp = Opportunity::from_units(100.0, 1.0, 2);
        assert_eq!(st.next_period(&opp).unwrap().unwrap(), secs(30.0));
        // Interrupt (1 of 2) mid-period: tail replayed obliviously.
        st.on_interrupt(secs(75.0), false);
        let opp2 = Opportunity::from_units(75.0, 1.0, 1);
        assert_eq!(st.next_period(&opp2).unwrap().unwrap(), secs(30.0));
        // Second interrupt exhausts the budget ⇒ consolidation.
        st.on_interrupt(secs(40.0), true);
        let opp3 = Opportunity::from_units(40.0, 1.0, 0);
        assert_eq!(st.next_period(&opp3).unwrap().unwrap(), secs(40.0));
        assert!(st.next_period(&opp3).unwrap().is_none());
    }

    #[test]
    fn nonadaptive_driver_exhausts_without_consolidation() {
        let sched =
            EpisodeSchedule::from_periods([50.0, 50.0].iter().map(|&x| secs(x)).collect()).unwrap();
        let mut st = DriverState::new(&DriverKind::NonAdaptive(sched));
        let opp = Opportunity::from_units(100.0, 1.0, 3);
        let _ = st.next_period(&opp).unwrap();
        let _ = st.next_period(&opp).unwrap();
        assert!(st.next_period(&opp).unwrap().is_none());
    }

    #[test]
    fn periods_are_clamped_to_residual() {
        let sched = EpisodeSchedule::single(secs(100.0)).unwrap();
        let mut st = DriverState::new(&DriverKind::NonAdaptive(sched));
        // Residual shrank (mid-period interrupt slack): clamp.
        let opp = Opportunity::from_units(60.0, 1.0, 0);
        assert_eq!(st.next_period(&opp).unwrap().unwrap(), secs(60.0));
    }
}
