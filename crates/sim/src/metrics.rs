//! Per-lender and aggregate accounting for simulated opportunities.

use cyclesteal_core::time::{Time, Work};

/// Why a lender's participation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DoneReason {
    /// Still running (only observable mid-simulation).
    #[default]
    Running,
    /// The contracted usable lifespan was fully consumed.
    LifespanExhausted,
    /// A committed non-adaptive schedule ran out of periods (mid-period
    /// interrupts leave unusable slack under the oblivious discipline).
    ScheduleExhausted,
    /// The shared task bag ran dry.
    OutOfTasks,
    /// The owner interrupted more than the contracted `p` times; the
    /// borrower walks away (the draconian contract is void).
    ContractViolated,
    /// The borrower's wall-clock deadline arrived (results were due; no
    /// period that cannot complete by the deadline is started).
    DeadlineReached,
}

/// Everything measured about one lender's opportunity.
#[derive(Clone, Debug, Default)]
pub struct LenderMetrics {
    /// The continuum model's banked work: `Σ (t ⊖ c)` over completed
    /// periods. This is the quantity the paper's `W(S)` predicts.
    pub continuum_work: Work,
    /// Task time actually completed (≤ `continuum_work` because tasks are
    /// indivisible).
    pub task_work: Work,
    /// Capacity lost to task indivisibility: `continuum_work − task_work`.
    pub quantization_waste: Work,
    /// Setup charges paid on completed periods.
    pub comm_overhead: Time,
    /// Usable lifespan destroyed by kills (partial periods).
    pub lost_time: Time,
    /// Contracted lifespan never scheduled (oblivious-tail slack, or the
    /// bag running dry).
    pub unused_lifespan: Time,
    /// Completed tasks.
    pub tasks_completed: usize,
    /// Periods that completed and banked work.
    pub periods_completed: usize,
    /// Periods killed in flight.
    pub periods_killed: usize,
    /// Owner interrupts observed (may exceed the contracted `p` by one on
    /// a contract violation).
    pub interrupts: u32,
    /// Usable lifespan consumed.
    pub consumed_lifespan: Time,
    /// Wall-clock instant the lender finished (gave up or ran out); may
    /// exceed a deadline when the final decision happens after an owner
    /// busy spell returns past it.
    pub wall_finished: Time,
    /// Wall-clock instant of the last *completed* period — never exceeds
    /// a configured deadline.
    pub wall_last_completion: Time,
    /// Why the lender stopped.
    pub done_reason: DoneReason,
}

impl LenderMetrics {
    /// Per-step accounting for a period that ran to completion — the one
    /// place a completed period's facts turn into metrics, shared by the
    /// event engine (and mirrored, in tick arithmetic, by the batch
    /// loop's aggregation).
    pub(crate) fn record_completed_period(
        &mut self,
        banked: Work,
        loaded: Work,
        setup_paid: Time,
        tasks: usize,
        wall: Time,
    ) {
        self.continuum_work += banked;
        self.task_work += loaded;
        self.quantization_waste += banked - loaded;
        self.comm_overhead += setup_paid;
        self.tasks_completed += tasks;
        self.periods_completed += 1;
        self.wall_last_completion = wall;
    }

    /// Per-step accounting for a period killed in flight by an owner
    /// interrupt that consumed `elapsed` of usable lifespan.
    pub(crate) fn record_killed_period(&mut self, elapsed: Time) {
        self.lost_time += elapsed;
        self.periods_killed += 1;
        self.interrupts += 1;
    }
}

/// Aggregate report over all lenders of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// `(lender name, metrics)` in configuration order.
    pub lenders: Vec<(String, LenderMetrics)>,
    /// Tasks left in the shared bag at the end.
    pub tasks_remaining: usize,
    /// Work left in the shared bag at the end.
    pub work_remaining: Work,
    /// Wall-clock instant the simulation went quiet.
    pub wall_end: Time,
}

impl SimReport {
    /// Total continuum work banked across lenders.
    pub fn total_continuum_work(&self) -> Work {
        self.lenders.iter().map(|(_, m)| m.continuum_work).sum()
    }

    /// Total completed task time across lenders.
    pub fn total_task_work(&self) -> Work {
        self.lenders.iter().map(|(_, m)| m.task_work).sum()
    }

    /// Total completed tasks across lenders.
    pub fn total_tasks(&self) -> usize {
        self.lenders.iter().map(|(_, m)| m.tasks_completed).sum()
    }

    /// Renders a compact per-lender table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>8} {:>8} {:>6} {:>6} {:>18}\n",
            "lender",
            "W (model)",
            "task work",
            "lost",
            "unused",
            "tasks",
            "intr",
            "finished because"
        ));
        for (name, m) in &self.lenders {
            out.push_str(&format!(
                "{:<14} {:>10.1} {:>10.1} {:>8.1} {:>8.1} {:>6} {:>6} {:>18}\n",
                name,
                m.continuum_work,
                m.task_work,
                m.lost_time,
                m.unused_lifespan,
                m.tasks_completed,
                m.interrupts,
                format!("{:?}", m.done_reason),
            ));
        }
        out.push_str(&format!(
            "TOTAL model W = {:.1}, task work = {:.1}, tasks = {}, bag leftover = {}\n",
            self.total_continuum_work(),
            self.total_task_work(),
            self.total_tasks(),
            self.tasks_remaining
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn report_totals_sum_over_lenders() {
        let a = LenderMetrics {
            continuum_work: secs(10.0),
            task_work: secs(8.0),
            tasks_completed: 3,
            ..LenderMetrics::default()
        };
        let b = LenderMetrics {
            continuum_work: secs(5.0),
            task_work: secs(5.0),
            tasks_completed: 2,
            ..LenderMetrics::default()
        };
        let report = SimReport {
            lenders: vec![("a".into(), a), ("b".into(), b)],
            tasks_remaining: 1,
            work_remaining: secs(2.0),
            wall_end: secs(100.0),
        };
        assert_eq!(report.total_continuum_work(), secs(15.0));
        assert_eq!(report.total_task_work(), secs(13.0));
        assert_eq!(report.total_tasks(), 5);
        let text = report.render();
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() >= 4);
    }
}
