//! Population-scale batch simulation: millions of episodes in
//! struct-of-arrays form.
//!
//! [`BatchSim`] plays the §2.2 period game for `N` independent episodes
//! of the *same* contract `(L, Q, p)` — the table-driven optimal
//! borrower against a configurable [`BatchAdversary`] — entirely on the
//! integer tick grid of a solved [`CompressedTable`]. There is no event
//! queue, no task bag and no per-episode heap `Lender`: episode state
//! lives in parallel arrays (lifespan left, interrupt budget left,
//! banked/lost ticks, period counters, the owner's next-arrival clock
//! and the per-episode draw counter), and one sweep of the live list
//! advances every running episode by exactly one period — dispatch and
//! resolution fused, so the in-flight period state never leaves
//! registers.
//!
//! **Determinism.** Every episode is a pure function of
//! `(config, episode index)`: randomness comes from counter-based
//! [`CounterRng`] streams keyed by `(seed, episode index)` (the same
//! splitmix64 scheme as the serving layer's fault harness), episode
//! blocks are fanned over a [`WorkerPool`] in index order, and the final
//! reduction is a sequential pass in episode order over exact integer
//! tick counts. Results are therefore bit-identical at any thread count
//! and any block size.
//!
//! **Validation semantics.** The borrower plays period-by-period with
//! [`CompressedTable::first_period_ticks`] — exactly the schedule
//! [`CompressedTable::episode`] commits, replanned from the residual
//! state after every interrupt. Against *any* adversary that spends at
//! most `p` interrupts at integer-tick instants, the banked output of
//! that play is at least `W^(p)[L]` (flooring a continuous arrival to
//! the grid only concedes lifespan to the borrower), so
//! `observed < guaranteed` is a hard zero-tolerance bug — the invariant
//! the `sim-validate` CI gate enforces. The [`BatchAdversary::Worst`]
//! owner realizes the minimax bound *exactly*: every episode banks
//! precisely `W^(p)[L]` ticks.

use crate::kernel;
use cyclesteal_adversary::counter::CounterRng;
use cyclesteal_dp::CompressedTable;
use cyclesteal_par::{block_ranges, WorkerPool};
use cyclesteal_workloads::OwnerClimate;
use std::ops::Range;
use std::sync::Arc;

/// The owner's behaviour across a batch, on the tick grid. All
/// stochastic variants draw from per-episode counter streams; all
/// variants stop interrupting once the contracted budget `p` is spent
/// (the draconian contract caps the adversary, not the borrower).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchAdversary {
    /// No interrupts: the borrower keeps the machine for the whole
    /// lifespan.
    Quiet,
    /// The paper's malicious owner, table-driven: facing a committed
    /// period of `t` ticks at residual `(p, l)`, it interrupts at the
    /// period's last instant (consuming all `t` ticks, banking nothing)
    /// exactly when `W^(p-1)[l-t] < (t-Q)⁺ + W^(p)[l-t]`, and lets the
    /// period complete otherwise (ties saved the interrupt). Realizes
    /// `W^(p)[L]` exactly against the optimal borrower.
    Worst,
    /// Poisson owner: exponential gaps between arrivals in usable time,
    /// floored to ticks. An arrival strictly inside a period kills it at
    /// the arrival tick; an arrival at or past the period boundary lets
    /// it complete (the engine's half-open window).
    Poisson {
        /// Mean gap between owner arrivals, in ticks. Must be positive.
        mean_gap_ticks: f64,
    },
    /// Memoryless per-period owner: each dispatched period is killed
    /// with probability `per_mille`/1000, at a position uniform over the
    /// period's ticks.
    UniformPerPeriod {
        /// Kill probability per dispatched period, in per-mille
        /// (`0..=1000`).
        per_mille: u32,
    },
}

impl BatchAdversary {
    /// Maps a named [`OwnerClimate`] onto a batch adversary for a grid
    /// with `q` ticks per setup charge.
    pub fn from_climate(climate: OwnerClimate, q: i64) -> BatchAdversary {
        match climate.mean_gap_setups() {
            Some(gap) => BatchAdversary::Poisson {
                mean_gap_ticks: gap * q as f64,
            },
            None => match climate {
                OwnerClimate::Hostile => BatchAdversary::Worst,
                _ => BatchAdversary::Quiet,
            },
        }
    }
}

/// Configuration of one batch: `episodes` independent plays of the same
/// contract.
#[derive(Clone)]
pub struct BatchConfig {
    /// The solved table that is both the borrower's policy and the
    /// guarantee oracle. Must cover `(lifespan_ticks, interrupts)`.
    pub table: Arc<CompressedTable>,
    /// Contracted lifespan `L` in ticks (`1..=table.max_ticks()`).
    pub lifespan_ticks: i64,
    /// Contracted interrupt budget `p` (`<= table.max_interrupts()`).
    pub interrupts: u32,
    /// Number of episodes to run.
    pub episodes: usize,
    /// Seed of every per-episode counter stream.
    pub seed: u64,
    /// The owner's behaviour.
    pub adversary: BatchAdversary,
    /// Episodes per work block (`0` = the default of 4096). Purely a
    /// scheduling knob: results are bit-identical at any block size.
    pub block: usize,
    /// Worker threads (`0` = auto via `cyclesteal_par::default_threads`,
    /// honouring `CYCLESTEAL_THREADS`). Purely a scheduling knob.
    pub threads: usize,
}

impl BatchConfig {
    fn block_size(&self) -> usize {
        if self.block == 0 {
            4096
        } else {
            self.block
        }
    }
}

/// Aggregate + per-episode results of one batch, all in exact integer
/// ticks. `PartialEq` compares everything — the determinism property
/// suite asserts whole-report equality across thread counts and block
/// sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Episodes run.
    pub episodes: usize,
    /// The table's guarantee `W^(p)[L]` in work ticks.
    pub guarantee_ticks: i64,
    /// Banked work ticks per episode, in episode order.
    pub banked: Vec<i64>,
    /// Interrupts the owner spent per episode, in episode order.
    pub interrupts_used: Vec<u32>,
    /// Sum of banked ticks over all episodes.
    pub total_banked: i128,
    /// Sum of lifespan ticks destroyed by kills.
    pub total_lost: i128,
    /// Total completed periods.
    pub total_periods: u64,
    /// Total killed periods (== total interrupts spent).
    pub total_killed: u64,
    /// Episodes whose banked output fell **below** the guarantee. Any
    /// nonzero value is a bug in the solver or the policy.
    pub violations: u64,
    /// Episodes whose banked output equals the guarantee exactly.
    pub exact_matches: u64,
    /// Smallest banked output observed.
    pub min_banked: i64,
    /// Largest banked output observed.
    pub max_banked: i64,
}

impl BatchReport {
    /// Mean banked ticks per episode.
    pub fn mean_banked(&self) -> f64 {
        if self.episodes == 0 {
            return 0.0;
        }
        self.total_banked as f64 / self.episodes as f64
    }

    /// Banked-output quantiles (one sort, nearest-rank): `qs` in
    /// `[0, 1]`, e.g. `&[0.0, 0.1, 0.5, 0.9, 1.0]` for a distribution
    /// curve.
    pub fn banked_quantiles(&self, qs: &[f64]) -> Vec<i64> {
        if self.banked.is_empty() {
            return vec![0; qs.len()];
        }
        let mut sorted = self.banked.clone();
        sorted.sort_unstable();
        qs.iter()
            .map(|&q| {
                let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank.min(sorted.len() - 1)]
            })
            .collect()
    }
}

/// Immutable per-batch context shared by every worker block.
struct Ctx {
    table: Arc<CompressedTable>,
    l0: i64,
    p0: u32,
    q: i64,
    seed: u64,
    adversary: BatchAdversary,
}

/// One block's struct-of-arrays output (per-episode arrays in episode
/// order, plus exact integer partial sums).
struct BlockOut {
    banked: Vec<i64>,
    interrupts_used: Vec<u32>,
    periods: u64,
    killed: u64,
    lost: i128,
}

/// Runs episodes `range` of the batch in struct-of-arrays form. Every
/// owner interrupt is also reported to `on_interrupt(block-local
/// episode index, absolute usable tick)` — a no-op closure in the hot
/// path, a recorder in trace replays — so there is exactly one
/// definition of the episode step.
fn run_block<F: FnMut(usize, i64)>(
    ctx: &Ctx,
    range: Range<usize>,
    mut on_interrupt: F,
) -> BlockOut {
    let n = range.len();
    let needs_rng = matches!(
        ctx.adversary,
        BatchAdversary::Poisson { .. } | BatchAdversary::UniformPerPeriod { .. }
    );

    // The parallel arrays: one slot per episode of the block.
    let mut l_left: Vec<i64> = vec![ctx.l0; n];
    let mut p_left: Vec<u32> = vec![ctx.p0; n];
    let mut banked: Vec<i64> = vec![0; n];
    let mut lost: Vec<i64> = vec![0; n];
    let mut periods: Vec<u32> = vec![0; n];
    let mut killed: Vec<u32> = vec![0; n];
    let mut rng: Vec<CounterRng> = if needs_rng {
        range
            .clone()
            .map(|e| CounterRng::new(ctx.seed, e as u64))
            .collect()
    } else {
        Vec::new()
    };
    // The owner's next arrival on the usable clock (Poisson only);
    // i64::MAX means "never".
    let mut next_arrival: Vec<i64> = match ctx.adversary {
        BatchAdversary::Poisson { mean_gap_ticks } => rng
            .iter_mut()
            .map(|r| r.next_exp_ticks(mean_gap_ticks))
            .collect(),
        _ => vec![i64::MAX; n],
    };

    // Sweep the live list until every episode has consumed its lifespan.
    // Each visit plays exactly one period: dispatch (the table's optimal
    // first period at the residual state) fused with resolution
    // (complete or killed). Every step either consumes >= 1 tick of
    // lifespan or one of the <= p interrupts, so an episode finishes in
    // at most L + p steps.
    let mut live: Vec<usize> = (0..n).collect();
    while !live.is_empty() {
        live.retain(|&i| {
            let l = l_left[i];
            let t = ctx.table.first_period_ticks(p_left[i], l).max(1).min(l);
            let consumed = ctx.l0 - l;

            // The owner's move: `Some(elapsed)` kills the period after
            // `elapsed` ticks (banking nothing), `None` lets it run out.
            let interrupt: Option<i64> = if p_left[i] == 0 {
                None
            } else {
                match ctx.adversary {
                    BatchAdversary::Quiet => None,
                    BatchAdversary::Worst => {
                        let concede = ctx.table.value_ticks(p_left[i] - 1, l - t);
                        let complete = kernel::banked_ticks(t, ctx.q)
                            + ctx.table.value_ticks(p_left[i], l - t);
                        (concede < complete).then_some(t)
                    }
                    BatchAdversary::Poisson { mean_gap_ticks: _ } => {
                        // Half-open window, as in the event engine: an
                        // arrival at the boundary lets the period finish.
                        (next_arrival[i] < consumed + t)
                            .then(|| (next_arrival[i] - consumed).max(0))
                    }
                    BatchAdversary::UniformPerPeriod { per_mille } => {
                        let fire = rng[i].next_u64() % 1000 < per_mille as u64;
                        fire.then(|| (rng[i].next_u64() % t as u64) as i64)
                    }
                }
            };

            match interrupt {
                None => {
                    banked[i] += kernel::banked_ticks(t, ctx.q);
                    periods[i] += 1;
                    l_left[i] = l - t;
                }
                Some(elapsed) => {
                    let at = consumed + elapsed;
                    on_interrupt(i, at);
                    lost[i] += elapsed;
                    killed[i] += 1;
                    p_left[i] -= 1;
                    l_left[i] = l - elapsed;
                    if let BatchAdversary::Poisson { mean_gap_ticks } = ctx.adversary {
                        // The consumed arrival happened at `at`; the next
                        // one is an exponential gap later.
                        next_arrival[i] = at.saturating_add(rng[i].next_exp_ticks(mean_gap_ticks));
                    }
                }
            }
            l_left[i] > 0
        });
    }

    BlockOut {
        periods: periods.iter().map(|&x| x as u64).sum(),
        killed: killed.iter().map(|&x| x as u64).sum(),
        lost: lost.iter().map(|&x| x as i128).sum(),
        banked,
        interrupts_used: killed,
    }
}

/// The struct-of-arrays batch simulator. See the module docs for the
/// determinism and validation contracts.
pub struct BatchSim {
    cfg: BatchConfig,
}

impl BatchSim {
    /// Builds a batch over `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent: zero episodes, a
    /// lifespan outside the table's solved range, an interrupt budget
    /// beyond the table's, a non-positive Poisson mean, or a per-mille
    /// probability above 1000.
    pub fn new(cfg: BatchConfig) -> BatchSim {
        assert!(cfg.episodes > 0, "a batch needs at least one episode");
        assert!(
            cfg.lifespan_ticks >= 1 && cfg.lifespan_ticks <= cfg.table.max_ticks(),
            "lifespan {} ticks outside the table's solved range 1..={}",
            cfg.lifespan_ticks,
            cfg.table.max_ticks()
        );
        assert!(
            cfg.interrupts <= cfg.table.max_interrupts(),
            "interrupt budget {} beyond the table's {}",
            cfg.interrupts,
            cfg.table.max_interrupts()
        );
        match cfg.adversary {
            BatchAdversary::Poisson { mean_gap_ticks } => {
                assert!(
                    mean_gap_ticks > 0.0 && mean_gap_ticks.is_finite(),
                    "Poisson mean gap must be positive and finite"
                );
            }
            BatchAdversary::UniformPerPeriod { per_mille } => {
                assert!(per_mille <= 1000, "per-mille probability above 1000");
            }
            _ => {}
        }
        BatchSim { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Runs the batch on a fresh pool of `cfg.threads` workers.
    pub fn run(&self) -> BatchReport {
        let pool = WorkerPool::new(self.cfg.threads);
        self.run_on(&pool)
    }

    /// Runs the batch on an existing pool. Episode blocks are scattered
    /// in index order and merged sequentially in block order, so the
    /// report is bit-identical for any pool size.
    pub fn run_on(&self, pool: &WorkerPool) -> BatchReport {
        let ctx = Arc::new(self.ctx());
        let jobs: Vec<_> = block_ranges(self.cfg.episodes, self.cfg.block_size())
            .into_iter()
            .map(|range| {
                let ctx = ctx.clone();
                move || run_block(&ctx, range, |_, _| ())
            })
            .collect();
        let outs = pool.scatter(jobs);

        let guarantee_ticks = self
            .cfg
            .table
            .value_ticks(self.cfg.interrupts, self.cfg.lifespan_ticks);
        let mut report = BatchReport {
            episodes: self.cfg.episodes,
            guarantee_ticks,
            banked: Vec::with_capacity(self.cfg.episodes),
            interrupts_used: Vec::with_capacity(self.cfg.episodes),
            total_banked: 0,
            total_lost: 0,
            total_periods: 0,
            total_killed: 0,
            violations: 0,
            exact_matches: 0,
            min_banked: i64::MAX,
            max_banked: i64::MIN,
        };
        for out in outs {
            report.total_periods += out.periods;
            report.total_killed += out.killed;
            report.total_lost += out.lost;
            report.banked.extend(out.banked);
            report.interrupts_used.extend(out.interrupts_used);
        }
        for &b in &report.banked {
            report.total_banked += b as i128;
            if b < guarantee_ticks {
                report.violations += 1;
            }
            if b == guarantee_ticks {
                report.exact_matches += 1;
            }
            report.min_banked = report.min_banked.min(b);
            report.max_banked = report.max_banked.max(b);
        }
        report
    }

    /// Replays one episode and returns the absolute usable-tick times of
    /// the owner interrupts it suffered — the bridge to the scalar event
    /// engine: feed these ticks (scaled by the grid's tick length) to an
    /// `OwnerTrace` and [`crate::NowSim`] plays the identical episode.
    /// Counter-based streams make the replay exact by construction.
    pub fn episode_interrupt_ticks(&self, episode: usize) -> Vec<i64> {
        assert!(episode < self.cfg.episodes, "episode index out of range");
        let ctx = self.ctx();
        let mut ticks = Vec::new();
        #[allow(clippy::range_plus_one)] // Range<usize>, not RangeInclusive
        let out = run_block(&ctx, episode..episode + 1, |_, at| ticks.push(at));
        debug_assert_eq!(out.killed as usize, ticks.len());
        ticks
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            table: self.cfg.table.clone(),
            l0: self.cfg.lifespan_ticks,
            p0: self.cfg.interrupts,
            q: self.cfg.table.grid().q(),
            seed: self.cfg.seed,
            adversary: self.cfg.adversary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;
    use cyclesteal_dp::{InnerLoop, RowRepr, SolveOptions};

    fn table(q: u32, p: u32, l_ticks: i64) -> Arc<CompressedTable> {
        Arc::new(CompressedTable::solve_with(
            secs(1.0),
            q,
            secs(l_ticks as f64 / q as f64),
            p,
            SolveOptions {
                inner: InnerLoop::EventDriven,
                repr: RowRepr::Runs,
                ..SolveOptions::default()
            },
        ))
    }

    fn cfg(adversary: BatchAdversary) -> BatchConfig {
        BatchConfig {
            table: table(8, 3, 2048),
            lifespan_ticks: 2048,
            interrupts: 3,
            episodes: 256,
            seed: 42,
            adversary,
            block: 0,
            threads: 1,
        }
    }

    #[test]
    fn worst_adversary_realizes_the_guarantee_exactly() {
        for (q, p, l) in [(4u32, 1u32, 256i64), (8, 3, 2048), (32, 2, 4096)] {
            let table = table(q, p, l);
            let report = BatchSim::new(BatchConfig {
                table: table.clone(),
                lifespan_ticks: l,
                interrupts: p,
                episodes: 16,
                seed: 7,
                adversary: BatchAdversary::Worst,
                block: 0,
                threads: 1,
            })
            .run();
            let w = table.value_ticks(p, l);
            assert_eq!(report.guarantee_ticks, w);
            assert_eq!(report.violations, 0);
            assert_eq!(
                report.exact_matches, 16,
                "(q={q}, p={p}, L={l}): minimax play must bank exactly W"
            );
            assert_eq!(report.min_banked, w);
            assert_eq!(report.max_banked, w);
        }
    }

    #[test]
    fn quiet_owner_never_interrupts_and_dominates_the_guarantee() {
        let report = BatchSim::new(cfg(BatchAdversary::Quiet)).run();
        assert_eq!(report.total_killed, 0);
        assert_eq!(report.violations, 0);
        assert!(report.interrupts_used.iter().all(|&k| k == 0));
        // No interrupts: strictly more than the p=3 worst case
        // (the guarantee prices in 3 free kills that never came).
        assert!(report.min_banked > report.guarantee_ticks);
        // All episodes identical (no randomness anywhere).
        assert_eq!(report.min_banked, report.max_banked);
    }

    #[test]
    fn stochastic_adversaries_never_beat_the_guarantee_and_replay_exactly() {
        for adversary in [
            BatchAdversary::Poisson {
                mean_gap_ticks: 300.0,
            },
            BatchAdversary::UniformPerPeriod { per_mille: 400 },
        ] {
            let a = BatchSim::new(cfg(adversary)).run();
            let b = BatchSim::new(cfg(adversary)).run();
            assert_eq!(a, b, "{adversary:?}: same seed, same report");
            assert_eq!(a.violations, 0, "{adversary:?}: guarantee violated");
            assert!(a.total_killed > 0, "{adversary:?}: adversary never fired");
            // Budget is draconian: never more than p interrupts.
            assert!(a.interrupts_used.iter().all(|&k| k <= 3));
        }
    }

    #[test]
    fn interrupt_trace_replay_matches_the_batch() {
        let sim = BatchSim::new(cfg(BatchAdversary::Poisson {
            mean_gap_ticks: 250.0,
        }));
        let report = sim.run();
        for episode in [0usize, 3, 117, 255] {
            let ticks = sim.episode_interrupt_ticks(episode);
            assert_eq!(
                ticks.len() as u32,
                report.interrupts_used[episode],
                "episode {episode}: replay disagrees with the batch"
            );
            for w in ticks.windows(2) {
                assert!(w[0] <= w[1], "interrupt times must be nondecreasing");
            }
        }
    }

    #[test]
    fn quantiles_and_means_are_consistent() {
        let report = BatchSim::new(cfg(BatchAdversary::Poisson {
            mean_gap_ticks: 400.0,
        }))
        .run();
        let qs = report.banked_quantiles(&[0.0, 0.5, 1.0]);
        assert_eq!(qs[0], report.min_banked);
        assert_eq!(qs[2], report.max_banked);
        assert!(qs[0] <= qs[1] && qs[1] <= qs[2]);
        let mean = report.mean_banked();
        assert!(mean >= report.min_banked as f64 && mean <= report.max_banked as f64);
    }
}
