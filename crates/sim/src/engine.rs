//! The discrete-event simulation engine.
//!
//! A [`NowSim`] runs a *network of workstations*: one shared bag of
//! indivisible tasks, and any number of lender workstations, each with its
//! own draconian contract `(U, c, p)`, its own owner-activity trace, and
//! its own scheduling driver. Time is two-dimensional, as in the paper's
//! setting: the **usable-lifespan clock** of each lender advances only
//! while the borrower holds the machine, while the **wall clock** orders
//! events across the whole NOW (owner busy spells freeze the former but
//! not the latter).
//!
//! Per period the engine plays §2.2 exactly: dispatch pays the setup
//! charge `c`, a period that completes banks its tasks, and an owner
//! interrupt kills the period in flight — tasks are requeued, the elapsed
//! slice of lifespan is lost. Experiment E8 checks that the engine's
//! banked `Σ(t ⊖ c)` reproduces the analytic `W(S)` transcript for the
//! same interrupt trace, and measures what the continuum model cannot see:
//! quantization waste from task indivisibility.

use crate::driver::{DriverKind, DriverState};
use crate::kernel;
use crate::metrics::{DoneReason, LenderMetrics, SimReport};
use cyclesteal_core::error::Result;
use cyclesteal_core::model::Opportunity;
use cyclesteal_core::time::{Time, Work};
use cyclesteal_workloads::{OwnerEvent, OwnerTrace, Task, TaskBag};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of one lender workstation.
#[derive(Clone, Debug)]
pub struct LenderConfig {
    /// Display name for reports.
    pub name: String,
    /// The contracted opportunity `(U, c, p)`.
    pub opportunity: Opportunity,
    /// The owner's actual behaviour (may exceed the contracted `p`, in
    /// which case the borrower walks away on the violating interrupt).
    pub owner: OwnerTrace,
    /// The borrower's scheduling discipline for this lender.
    pub driver: DriverKind,
    /// Optional wall-clock deadline: the borrower never starts a period
    /// that cannot complete by it (results are due — work finished later
    /// is worthless, so owner busy spells can run out the clock).
    pub deadline: Option<Time>,
}

struct InFlight {
    period_len: Time,
    usable_start: Time,
    tasks: Vec<Task>,
    loaded: Work,
}

struct Lender {
    name: String,
    contracted: Opportunity,
    driver: DriverState,
    consumed: Time,
    interrupts_used: u32,
    owner_events: VecDeque<OwnerEvent>,
    inflight: Option<InFlight>,
    done: bool,
    deadline: Option<Time>,
    metrics: LenderMetrics,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvKind {
    PeriodEnd,
    OwnerInterrupt,
    OwnerReturn,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    wall: Time,
    seq: u64,
    lender: usize,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.wall.cmp(&other.wall).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator: shared task bag + lender stations + event queue.
pub struct NowSim {
    lenders: Vec<Lender>,
    bag: TaskBag,
    queue: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    wall_end: Time,
}

impl NowSim {
    /// Builds a simulation over `configs` sharing `bag`.
    pub fn new(configs: Vec<LenderConfig>, bag: TaskBag) -> NowSim {
        let lenders = configs
            .into_iter()
            .map(|cfg| Lender {
                driver: DriverState::new(&cfg.driver),
                owner_events: cfg.owner.events().iter().copied().collect(),
                name: cfg.name,
                contracted: cfg.opportunity,
                consumed: Time::ZERO,
                interrupts_used: 0,
                inflight: None,
                done: false,
                deadline: cfg.deadline,
                metrics: LenderMetrics::default(),
            })
            .collect();
        NowSim {
            lenders,
            bag,
            queue: BinaryHeap::new(),
            seq: 0,
            wall_end: Time::ZERO,
        }
    }

    fn push(&mut self, wall: Time, lender: usize, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Ev {
            wall,
            seq,
            lender,
            kind,
        }));
    }

    /// Runs to quiescence and returns the report.
    pub fn run(mut self) -> Result<SimReport> {
        for i in 0..self.lenders.len() {
            self.dispatch(i, Time::ZERO)?;
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.wall_end = self.wall_end.max(ev.wall);
            match ev.kind {
                EvKind::PeriodEnd => self.on_period_end(ev)?,
                EvKind::OwnerInterrupt => self.on_owner_interrupt(ev)?,
                EvKind::OwnerReturn => self.dispatch(ev.lender, ev.wall)?,
            }
        }
        let lenders = self
            .lenders
            .into_iter()
            .map(|l| (l.name, l.metrics))
            .collect();
        Ok(SimReport {
            lenders,
            tasks_remaining: self.bag.len(),
            work_remaining: self.bag.remaining_work(),
            wall_end: self.wall_end,
        })
    }

    /// Commits the next period of lender `i` at wall time `now`, or marks
    /// the lender finished.
    fn dispatch(&mut self, i: usize, now: Time) -> Result<()> {
        let eps = kernel::eps(self.lenders[i].contracted.setup());
        let (residual, p_left) = {
            let l = &self.lenders[i];
            if l.done {
                return Ok(());
            }
            (
                l.contracted.lifespan() - l.consumed,
                l.contracted.interrupts().saturating_sub(l.interrupts_used),
            )
        };
        if residual <= eps {
            self.finish(i, now, DoneReason::LifespanExhausted);
            return Ok(());
        }
        if self.bag.is_empty() {
            self.finish(i, now, DoneReason::OutOfTasks);
            return Ok(());
        }
        let opp = Opportunity::new(residual, self.lenders[i].contracted.setup(), p_left)?;
        let period = match self.lenders[i].driver.next_period(&opp)? {
            Some(t) if t > eps => t,
            _ => {
                self.finish(i, now, DoneReason::ScheduleExhausted);
                return Ok(());
            }
        };
        if let Some(deadline) = self.lenders[i].deadline {
            if now + period > deadline + eps {
                self.finish(i, now, DoneReason::DeadlineReached);
                return Ok(());
            }
        }

        let c = self.lenders[i].contracted.setup();
        let budget = kernel::banked(period, c);
        let tasks = self.bag.take_fitting(budget);
        let loaded: Work = tasks.iter().map(|t| t.duration).sum();

        let l = &mut self.lenders[i];
        let usable_start = l.consumed;
        l.inflight = Some(InFlight {
            period_len: period,
            usable_start,
            tasks,
            loaded,
        });

        // One outstanding event per lender: either the owner lands inside
        // this period (strictly before its last instant boundary — the
        // windows are half-open) or the period completes.
        let interrupt_now = l
            .owner_events
            .front()
            .map(|e| kernel::lands_inside(e.at_usable, usable_start, period))
            .unwrap_or(false);
        if interrupt_now {
            let at = l.owner_events.front().expect("checked above").at_usable;
            let dt = kernel::interrupt_elapsed(at, usable_start, period);
            self.push(now + dt, i, EvKind::OwnerInterrupt);
        } else {
            self.push(now + period, i, EvKind::PeriodEnd);
        }
        Ok(())
    }

    fn on_period_end(&mut self, ev: Ev) -> Result<()> {
        let i = ev.lender;
        let c = self.lenders[i].contracted.setup();
        let l = &mut self.lenders[i];
        let fl = l.inflight.take().expect("PeriodEnd without inflight");
        l.metrics.record_completed_period(
            kernel::banked(fl.period_len, c),
            fl.loaded,
            kernel::setup_paid(fl.period_len, c),
            fl.tasks.len(),
            ev.wall,
        );
        l.consumed = fl.usable_start + fl.period_len;
        self.dispatch(i, ev.wall)
    }

    fn on_owner_interrupt(&mut self, ev: Ev) -> Result<()> {
        let i = ev.lender;
        let budget = self.lenders[i].contracted.interrupts();
        let (requeue, busy, residual_after, violated) = {
            let l = &mut self.lenders[i];
            let e = l
                .owner_events
                .pop_front()
                .expect("OwnerInterrupt without a pending owner event");
            let fl = l.inflight.take().expect("OwnerInterrupt without inflight");
            let elapsed = kernel::interrupt_elapsed(e.at_usable, fl.usable_start, fl.period_len);
            l.metrics.record_killed_period(elapsed);
            l.consumed = fl.usable_start + elapsed;
            l.interrupts_used += 1;
            let violated = l.interrupts_used > budget;
            let residual_after = l.contracted.lifespan() - l.consumed;
            if !violated {
                l.driver
                    .on_interrupt(residual_after, l.interrupts_used == budget);
            }
            (fl.tasks, e.busy_wall, residual_after, violated)
        };
        // The draconian kill loses the work, not the tasks.
        self.bag.requeue_front(requeue);
        let _ = residual_after;
        if violated {
            self.finish(i, ev.wall, DoneReason::ContractViolated);
            return Ok(());
        }
        if busy.is_positive() {
            self.push(ev.wall + busy, i, EvKind::OwnerReturn);
            Ok(())
        } else {
            self.dispatch(i, ev.wall)
        }
    }

    fn finish(&mut self, i: usize, wall: Time, reason: DoneReason) {
        let l = &mut self.lenders[i];
        debug_assert!(!l.done, "lender {} finished twice", l.name);
        l.done = true;
        l.metrics.done_reason = reason;
        l.metrics.consumed_lifespan = l.consumed;
        l.metrics.unused_lifespan = (l.contracted.lifespan() - l.consumed).clamp_min_zero();
        l.metrics.wall_finished = wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_adversary::stochastic::TraceAdversary;
    use cyclesteal_adversary::{game::run_game, UniformRandomAdversary};

    use cyclesteal_core::prelude::*;
    use cyclesteal_workloads::TaskDist;
    use std::sync::Arc;

    fn lender(u: f64, c: f64, p: u32, owner: OwnerTrace, driver: DriverKind) -> LenderConfig {
        LenderConfig {
            name: "ws".into(),
            opportunity: Opportunity::from_units(u, c, p),
            owner,
            driver,
            deadline: None,
        }
    }

    fn plenty_of_tiny_tasks(total: f64) -> TaskBag {
        // 1/64 is binary-exact, so greedy packing fills budgets exactly.
        TaskBag::generate_work(TaskDist::Constant(0.015625), secs(total), 1)
    }

    #[test]
    fn quiet_owner_single_period_banks_everything() {
        let cfg = lender(
            100.0,
            1.0,
            0,
            OwnerTrace::quiet(),
            DriverKind::Adaptive(Arc::new(SinglePeriodPolicy)),
        );
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(200.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        assert!(m.continuum_work.approx_eq(secs(99.0), secs(1e-9)));
        // 1/64-unit tasks fill the 99-unit budget exactly (6336 tasks).
        assert!(m.task_work.approx_eq(secs(99.0), secs(1e-6)));
        assert_eq!(m.tasks_completed, 6336);
        assert_eq!(m.done_reason, DoneReason::LifespanExhausted);
        assert_eq!(m.interrupts, 0);
        assert!(m.unused_lifespan.approx_eq(secs(0.0), secs(1e-9)));
    }

    #[test]
    fn sim_reproduces_analytic_game_transcripts() {
        // The load-bearing validation: for the same interrupt trace, the
        // engine's banked Σ(t⊖c) equals the analytic game's total work.
        let policy = AdaptiveGuideline::default();
        for seed in 0..12u64 {
            let trace = OwnerTrace::poisson(seed, 0.008, secs(480.0), 3, Time::ZERO);
            let opp = Opportunity::from_units(500.0, 1.0, 3);

            let mut adv = TraceAdversary::new(trace.interrupt_times());
            let analytic = run_game(&policy, &mut adv, &opp).unwrap();

            let cfg = lender(
                500.0,
                1.0,
                3,
                trace,
                DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            );
            let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(600.0))
                .run()
                .unwrap();
            let m = &report.lenders[0].1;
            assert!(
                m.continuum_work.approx_eq(analytic.total_work, secs(1e-6)),
                "seed {seed}: sim {} vs analytic {}",
                m.continuum_work,
                analytic.total_work
            );
            assert_eq!(m.interrupts as usize, analytic.interrupts_used());
        }
    }

    #[test]
    fn nonadaptive_tail_replay_and_consolidation() {
        // U=100, c=1, p=1, schedule 4×25, owner kills at usable 30
        // (period 1, offset 5). Budget exhausted ⇒ consolidation: one long
        // period over the residual 70. Banked: period 0 (24) + 69 = 93.
        let sched = EpisodeSchedule::equal(secs(100.0), 4).unwrap();
        let owner = OwnerTrace::new(vec![OwnerEvent {
            at_usable: secs(30.0),
            busy_wall: Time::ZERO,
        }]);
        let cfg = lender(100.0, 1.0, 1, owner, DriverKind::NonAdaptive(sched));
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(150.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        assert!(
            m.continuum_work.approx_eq(secs(93.0), secs(1e-9)),
            "banked {}",
            m.continuum_work
        );
        assert!(m.lost_time.approx_eq(secs(5.0), secs(1e-9)));
        assert_eq!(m.periods_killed, 1);
        assert_eq!(m.done_reason, DoneReason::LifespanExhausted);
    }

    #[test]
    fn nonadaptive_without_consolidation_leaves_slack() {
        // p=2 but only 1 interrupt: oblivious tail replay. Kill at usable
        // 30 (period 1 of 4×25, offset 5): tail = periods 2,3 (25 each),
        // total scheduled after = 50 < residual 70 ⇒ 20 units unused.
        let sched = EpisodeSchedule::equal(secs(100.0), 4).unwrap();
        let owner = OwnerTrace::new(vec![OwnerEvent {
            at_usable: secs(30.0),
            busy_wall: Time::ZERO,
        }]);
        let cfg = lender(100.0, 1.0, 2, owner, DriverKind::NonAdaptive(sched));
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(150.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        // Banked: period 0 (24) + two tail periods (24 each) = 72.
        assert!(m.continuum_work.approx_eq(secs(72.0), secs(1e-9)));
        assert_eq!(m.done_reason, DoneReason::ScheduleExhausted);
        assert!(m.unused_lifespan.approx_eq(secs(20.0), secs(1e-9)));
    }

    #[test]
    fn contract_violation_ends_participation() {
        // p=1 contracted, but the owner interrupts twice.
        let owner = OwnerTrace::new(vec![
            OwnerEvent {
                at_usable: secs(20.0),
                busy_wall: Time::ZERO,
            },
            OwnerEvent {
                at_usable: secs(40.0),
                busy_wall: Time::ZERO,
            },
        ]);
        let cfg = lender(
            100.0,
            1.0,
            1,
            owner,
            DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(2))),
        );
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(150.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        assert_eq!(m.done_reason, DoneReason::ContractViolated);
        assert_eq!(m.interrupts, 2);
        assert!(m.unused_lifespan > secs(50.0));
    }

    #[test]
    fn busy_spells_stretch_wall_clock_not_usable() {
        let owner = OwnerTrace::new(vec![OwnerEvent {
            at_usable: secs(50.0),
            busy_wall: secs(500.0),
        }]);
        let cfg = lender(
            100.0,
            1.0,
            1,
            owner,
            DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(4))),
        );
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(150.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        assert_eq!(m.done_reason, DoneReason::LifespanExhausted);
        // Usable lifespan fully consumed, but the wall clock includes the
        // owner's 500-unit session.
        assert!(m.consumed_lifespan.approx_eq(secs(100.0), secs(1e-9)));
        assert!(m.wall_finished >= secs(600.0) - secs(1e-6));
    }

    #[test]
    fn out_of_tasks_stops_early_and_conserves_tasks() {
        let bag = TaskBag::generate(TaskDist::Constant(5.0), 4, 1); // 20 work
        let cfg = lender(
            1000.0,
            1.0,
            0,
            OwnerTrace::quiet(),
            DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(10))),
        );
        let report = NowSim::new(vec![cfg], bag).run().unwrap();
        let m = &report.lenders[0].1;
        assert_eq!(m.done_reason, DoneReason::OutOfTasks);
        assert_eq!(m.tasks_completed + report.tasks_remaining, 4);
        assert_eq!(report.tasks_remaining, 0);
        assert!(m.unused_lifespan > secs(700.0));
    }

    #[test]
    fn shared_bag_conserves_tasks_across_lenders() {
        let n_tasks = 600usize;
        let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.5, hi: 3.0 }, n_tasks, 7);
        let mk = |seed: u64| {
            lender(
                400.0,
                1.0,
                3,
                OwnerTrace::poisson(seed, 0.01, secs(400.0), 3, secs(5.0)),
                DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            )
        };
        let report = NowSim::new(vec![mk(1), mk(2), mk(3)], bag).run().unwrap();
        let done: usize = report.lenders.iter().map(|(_, m)| m.tasks_completed).sum();
        assert_eq!(done + report.tasks_remaining, n_tasks);
        // All three lenders made progress.
        for (name, m) in &report.lenders {
            assert!(m.tasks_completed > 0, "{name} did nothing");
        }
    }

    #[test]
    fn quantization_waste_appears_with_chunky_tasks() {
        // Periods of ~10 (budget 9) but tasks of 4: each period fits 2
        // tasks (8), wasting 1 — waste ≈ 1/9 of capacity.
        let bag = TaskBag::generate(TaskDist::Constant(4.0), 500, 1);
        let cfg = lender(
            100.0,
            1.0,
            0,
            OwnerTrace::quiet(),
            DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(10))),
        );
        let report = NowSim::new(vec![cfg], bag).run().unwrap();
        let m = &report.lenders[0].1;
        assert!(m.quantization_waste > secs(5.0));
        assert!(
            (m.task_work + m.quantization_waste).approx_eq(m.continuum_work, secs(1e-6)),
            "waste accounting must close"
        );
    }

    #[test]
    fn stochastic_adversary_equivalence_smoke() {
        // UniformRandomAdversary in the analytic game and the same
        // interrupts replayed in the sim agree. (Build the trace from a
        // game transcript first.)
        let policy = EqualPeriodsPolicy::new(8);
        let opp = Opportunity::from_units(300.0, 1.0, 2);
        let mut adv = UniformRandomAdversary::new(99, 0.7);
        let log = run_game(&policy, &mut adv, &opp).unwrap();
        // Reconstruct absolute interrupt times from the transcript.
        let mut abs = Vec::new();
        let mut elapsed = Time::ZERO;
        for ep in &log.episodes {
            if !matches!(ep.response, InterruptSpec::None) {
                abs.push(elapsed + ep.consumed);
            }
            elapsed += ep.consumed;
        }
        let events = abs
            .iter()
            .map(|&t| OwnerEvent {
                at_usable: t,
                busy_wall: Time::ZERO,
            })
            .collect();
        let cfg = lender(
            300.0,
            1.0,
            2,
            OwnerTrace::new(events),
            DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(8))),
        );
        let report = NowSim::new(vec![cfg], plenty_of_tiny_tasks(400.0))
            .run()
            .unwrap();
        let m = &report.lenders[0].1;
        assert!(
            m.continuum_work.approx_eq(log.total_work, secs(1e-6)),
            "sim {} vs game {}",
            m.continuum_work,
            log.total_work
        );
    }
}
