//! Determinism and equivalence properties of the struct-of-arrays batch
//! simulator.
//!
//! The contracts pinned here are the ones the `sim-validate` CI gate
//! leans on:
//!
//! 1. **Scheduling invariance** — a batch report is bit-identical at any
//!    worker-thread count (including `threads: 0`, which resolves
//!    through `CYCLESTEAL_THREADS`; the `deep-props` CI matrix runs this
//!    suite at 1 and 4 threads) and at any block size.
//! 2. **Scalar equivalence** — one episode of a batch, replayed through
//!    an `OwnerTrace` into the event-driven `NowSim` engine driven by
//!    the same table's optimal policy, banks the *bit-identical* amount
//!    of continuum work.
//! 3. **Guarantee dominance** — no adversary in the catalogue ever
//!    drives observed output below `W^(p)[L]`, and the worst-case owner
//!    realizes it exactly.

use cyclesteal_core::model::Opportunity;
use cyclesteal_core::time::secs;
use cyclesteal_dp::{CompressedOptimalPolicy, CompressedTable, InnerLoop, RowRepr, SolveOptions};
use cyclesteal_workloads::{OwnerEvent, OwnerTrace, TaskBag, TaskDist};
use now_sim::{
    BatchAdversary, BatchConfig, BatchSim, DoneReason, DriverKind, LenderConfig, NowSim,
};
use std::sync::Arc;

fn table(q: u32, p: u32, l_ticks: i64) -> Arc<CompressedTable> {
    Arc::new(CompressedTable::solve_with(
        secs(1.0),
        q,
        secs(l_ticks as f64 / q as f64),
        p,
        SolveOptions {
            inner: InnerLoop::EventDriven,
            repr: RowRepr::Runs,
            ..SolveOptions::default()
        },
    ))
}

fn base_cfg(adversary: BatchAdversary) -> BatchConfig {
    BatchConfig {
        table: table(8, 3, 2048),
        lifespan_ticks: 2048,
        interrupts: 3,
        episodes: 2000,
        seed: 0xBA7C4,
        adversary,
        block: 0,
        threads: 1,
    }
}

fn adversary_catalogue() -> [BatchAdversary; 4] {
    [
        BatchAdversary::Quiet,
        BatchAdversary::Worst,
        BatchAdversary::Poisson {
            mean_gap_ticks: 300.0,
        },
        BatchAdversary::UniformPerPeriod { per_mille: 350 },
    ]
}

#[test]
fn reports_are_bit_identical_across_thread_counts() {
    for adversary in adversary_catalogue() {
        let reference = BatchSim::new(base_cfg(adversary)).run();
        assert_eq!(reference.violations, 0, "{adversary:?}");
        // 0 resolves through default_threads() — under the deep-props CI
        // matrix that is CYCLESTEAL_THREADS ∈ {1, 4}.
        for threads in [0usize, 2, 4, 7] {
            let cfg = BatchConfig {
                threads,
                ..base_cfg(adversary)
            };
            let report = BatchSim::new(cfg).run();
            assert_eq!(
                report, reference,
                "{adversary:?}: report diverged at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn reports_are_bit_identical_across_block_sizes() {
    for adversary in [
        BatchAdversary::Worst,
        BatchAdversary::Poisson {
            mean_gap_ticks: 300.0,
        },
    ] {
        let reference = BatchSim::new(base_cfg(adversary)).run();
        for block in [1usize, 7, 100, 1999, 100_000] {
            let cfg = BatchConfig {
                block,
                threads: 4,
                ..base_cfg(adversary)
            };
            let report = BatchSim::new(cfg).run();
            assert_eq!(
                report, reference,
                "{adversary:?}: report diverged at block size {block}"
            );
        }
    }
}

/// One episode of a batch == the scalar event engine on the same trace.
///
/// The bridge: replay the episode's interrupt ticks into an
/// [`OwnerTrace`] (scaled by the grid's tick length) and drive `NowSim`
/// with the same table's optimal policy. On a binary-exact grid
/// (tick = 1/4) every f64 the engine computes is an exact multiple of
/// the tick, so the comparison is `==`, not approx. The `Worst`
/// adversary is excluded by design: it kills at the period's *last
/// instant*, which the event engine's half-open window reads as a
/// completion — its anchor is the analytic value instead (below).
#[test]
fn single_episodes_match_the_scalar_engine_bit_for_bit() {
    let q = 4u32;
    let l_ticks = 1024i64;
    let p = 2u32;
    let tbl = table(q, p, l_ticks);
    let tick = tbl.grid().tick();
    let lifespan = tick * l_ticks as f64;
    assert_eq!(lifespan, secs(256.0));

    let mut compared = 0usize;
    for adversary in [
        BatchAdversary::Quiet,
        BatchAdversary::Poisson {
            mean_gap_ticks: 150.0,
        },
        BatchAdversary::UniformPerPeriod { per_mille: 300 },
    ] {
        let sim = BatchSim::new(BatchConfig {
            table: tbl.clone(),
            lifespan_ticks: l_ticks,
            interrupts: p,
            episodes: 24,
            seed: 0x5EED,
            adversary,
            block: 0,
            threads: 1,
        });
        let report = sim.run();
        assert_eq!(report.violations, 0, "{adversary:?}");

        for episode in 0..24usize {
            let ticks = sim.episode_interrupt_ticks(episode);
            // OwnerTrace requires strictly increasing instants; the rare
            // zero-gap double interrupt cannot be expressed as a trace.
            if ticks.windows(2).any(|w| w[0] >= w[1]) {
                continue;
            }
            let events: Vec<OwnerEvent> = ticks
                .iter()
                .map(|&at| OwnerEvent {
                    at_usable: tick * at as f64,
                    busy_wall: secs(0.0),
                })
                .collect();
            let cfg = LenderConfig {
                name: format!("episode-{episode}"),
                opportunity: Opportunity::new(lifespan, secs(1.0), p).unwrap(),
                owner: OwnerTrace::new(events),
                driver: DriverKind::Adaptive(Arc::new(CompressedOptimalPolicy::new(tbl.clone()))),
                deadline: None,
            };
            // 1/64 tasks pack any budget exactly; the bag never runs dry.
            let bag = TaskBag::generate_work(TaskDist::Constant(0.015625), secs(400.0), 1);
            let scalar = NowSim::new(vec![cfg], bag).run().unwrap();
            let m = &scalar.lenders[0].1;

            let batch_banked = tick * report.banked[episode] as f64;
            assert_eq!(
                m.continuum_work.get(),
                batch_banked.get(),
                "{adversary:?} episode {episode}: engine banked {} vs batch {}",
                m.continuum_work,
                batch_banked
            );
            assert_eq!(m.interrupts, report.interrupts_used[episode]);
            assert_eq!(m.done_reason, DoneReason::LifespanExhausted);
            assert_eq!(m.consumed_lifespan.get(), lifespan.get());
            compared += 1;
        }
    }
    assert!(
        compared >= 60,
        "too many episodes skipped for zero-gap doubles: {compared}"
    );
}

#[test]
fn worst_case_owner_realizes_the_analytic_value_exactly() {
    let tbl = table(8, 3, 2048);
    for p in 0..=3u32 {
        for l in [1i64, 7, 64, 513, 2048] {
            let report = BatchSim::new(BatchConfig {
                table: tbl.clone(),
                lifespan_ticks: l,
                interrupts: p,
                episodes: 4,
                seed: 1,
                adversary: BatchAdversary::Worst,
                block: 0,
                threads: 1,
            })
            .run();
            let w = tbl.value_ticks(p, l);
            assert_eq!(report.min_banked, w, "(p={p}, L={l})");
            assert_eq!(report.max_banked, w, "(p={p}, L={l})");
            assert_eq!(report.exact_matches as usize, report.episodes);
        }
    }
}
