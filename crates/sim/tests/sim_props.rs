//! Property tests for the NOW simulator: conservation laws and contract
//! semantics under randomized owners, workloads and disciplines.

use cyclesteal_core::prelude::*;
use cyclesteal_workloads::{OwnerTrace, TaskBag, TaskDist};
use now_sim::{DoneReason, DriverKind, LenderConfig, NowSim};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_driver() -> impl Strategy<Value = u8> {
    0u8..4
}

fn mk_driver(kind: u8, opp: &Opportunity) -> DriverKind {
    match kind {
        0 => DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
        1 => DriverKind::Adaptive(Arc::new(SelfSimilarGuideline::default())),
        2 => DriverKind::Adaptive(Arc::new(EqualPeriodsPolicy::new(6))),
        _ => DriverKind::NonAdaptive(NonAdaptiveGuideline::build(opp).unwrap()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any owner, workload and discipline: tasks are conserved,
    /// accounting closes, and every clock inequality holds.
    #[test]
    fn conservation_and_accounting(
        u in 50.0f64..800.0,
        p in 0u32..5,
        kind in arb_driver(),
        seed in 0u64..5_000,
        rate in 0.0f64..0.02,
        busy in 0.0f64..30.0,
        n_tasks in 10usize..200,
    ) {
        let opp = Opportunity::from_units(u, 1.0, p);
        let owner = OwnerTrace::poisson(seed, rate, secs(u), p as usize + 1, secs(busy));
        let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.3, hi: 3.0 }, n_tasks, seed);
        let cfg = LenderConfig {
            name: "ws".into(),
            opportunity: opp,
            owner,
            driver: mk_driver(kind, &opp),
            deadline: None,
        };
        let report = NowSim::new(vec![cfg], bag).run().unwrap();
        let m = &report.lenders[0].1;

        // Task conservation.
        prop_assert_eq!(m.tasks_completed + report.tasks_remaining, n_tasks);
        // Work accounting closes.
        prop_assert!((m.task_work + m.quantization_waste - m.continuum_work).abs()
            <= secs(1e-6));
        // Clocks: consumed + unused = contracted; wall ≥ consumed.
        prop_assert!((m.consumed_lifespan + m.unused_lifespan - secs(u)).abs()
            <= secs(1e-6));
        prop_assert!(m.wall_finished + secs(1e-6) >= m.consumed_lifespan);
        // Contract: at most p interrupts unless the trace violated it,
        // in which case the run ended on the violation.
        if m.interrupts > p {
            prop_assert_eq!(m.done_reason, DoneReason::ContractViolated);
            prop_assert_eq!(m.interrupts, p + 1);
        }
        // Banked work is bounded by the consumed lifespan.
        prop_assert!(m.continuum_work <= m.consumed_lifespan + secs(1e-6));
    }

    /// Deadlines are honoured: nothing completes after the deadline, and
    /// a tight deadline strictly reduces (or preserves) banked work.
    #[test]
    fn deadlines_are_honoured(
        u in 100.0f64..500.0,
        deadline_frac in 0.1f64..1.5,
        seed in 0u64..2_000,
    ) {
        let p = 2u32;
        let opp = Opportunity::from_units(u, 1.0, p);
        let owner = OwnerTrace::poisson(seed, 0.005, secs(u), p as usize, secs(20.0));
        let bag = || TaskBag::generate(TaskDist::Constant(0.5), 4_000, seed);
        let mk = |deadline: Option<Time>| LenderConfig {
            name: "ws".into(),
            opportunity: opp,
            owner: owner.clone(),
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            deadline,
        };
        let deadline = secs(u * deadline_frac);
        let with = NowSim::new(vec![mk(Some(deadline))], bag()).run().unwrap();
        let without = NowSim::new(vec![mk(None)], bag()).run().unwrap();
        let mw = &with.lenders[0].1;
        let mo = &without.lenders[0].1;
        prop_assert!(mw.wall_last_completion <= deadline + secs(1e-6),
            "period completed at {} after deadline {deadline}", mw.wall_last_completion);
        prop_assert!(mw.continuum_work <= mo.continuum_work + secs(1e-6),
            "deadline increased banked work");
    }

    /// Multi-lender runs preserve global task conservation and never
    /// duplicate a task across stations.
    #[test]
    fn pool_task_conservation(
        n_lenders in 1usize..6,
        n_tasks in 20usize..300,
        seed in 0u64..2_000,
    ) {
        let lenders: Vec<LenderConfig> = (0..n_lenders).map(|i| {
            let opp = Opportunity::from_units(200.0 + 40.0 * i as f64, 1.0, 2);
            LenderConfig {
                name: format!("ws{i}"),
                opportunity: opp,
                owner: OwnerTrace::poisson(seed + i as u64, 0.01, secs(400.0), 2, secs(10.0)),
                driver: mk_driver((i % 4) as u8, &opp),
                deadline: None,
            }
        }).collect();
        let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.3, hi: 2.0 }, n_tasks, seed);
        let report = NowSim::new(lenders, bag).run().unwrap();
        let done: usize = report.lenders.iter().map(|(_, m)| m.tasks_completed).sum();
        prop_assert_eq!(done + report.tasks_remaining, n_tasks);
    }
}
