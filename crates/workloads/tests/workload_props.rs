//! Property tests for workload generation: conservation laws of the task
//! bag, trace serialization round-trips, distribution sanity.

use cyclesteal_core::time::{secs, Time, Work};
use cyclesteal_workloads::{OwnerTrace, TaskBag, TaskDist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tasks are conserved under arbitrary take/requeue interleavings, and
    /// FIFO order is restored when everything is requeued.
    #[test]
    fn bag_conservation_under_take_requeue(
        durations in prop::collection::vec(0.1f64..5.0, 1..60),
        budgets in prop::collection::vec(0.0f64..20.0, 1..20),
    ) {
        let mut bag = TaskBag::new();
        for &d in &durations {
            bag.push_duration(secs(d));
        }
        let n = bag.len();
        let total = bag.remaining_work();

        let mut in_flight = Vec::new();
        for &b in &budgets {
            let taken = bag.take_fitting(secs(b));
            in_flight.push(taken);
        }
        let out: usize = in_flight.iter().map(Vec::len).sum();
        prop_assert_eq!(bag.len() + out, n);

        // Requeue everything in reverse order of taking (like nested
        // kills) — the bag must end up whole.
        let mut returned: Work = bag.remaining_work();
        for batch in in_flight.into_iter().rev() {
            returned += batch.iter().map(|t| t.duration).sum::<Time>();
            bag.requeue_front(batch);
        }
        prop_assert_eq!(bag.len(), n);
        prop_assert!((bag.remaining_work() - total).abs() <= secs(1e-9));
        prop_assert!((returned - total).abs() <= secs(1e-9));
    }

    /// take_fitting never exceeds its budget and always takes a FIFO
    /// prefix (ids strictly increasing, starting at the current head).
    #[test]
    fn take_fitting_is_budgeted_prefix(
        durations in prop::collection::vec(0.1f64..5.0, 1..40),
        budget in 0.0f64..30.0,
    ) {
        let mut bag = TaskBag::new();
        for &d in &durations {
            bag.push_duration(secs(d));
        }
        let taken = bag.take_fitting(secs(budget));
        let used: Time = taken.iter().map(|t| t.duration).sum();
        prop_assert!(used <= secs(budget) + secs(1e-12));
        for (i, t) in taken.iter().enumerate() {
            prop_assert_eq!(t.id, i as u64, "not a prefix");
        }
    }

    /// Owner trace text round-trips exactly.
    #[test]
    fn trace_text_round_trip(
        seed in 0u64..10_000,
        rate in 0.0005f64..0.05,
        busy in 0.0f64..50.0,
    ) {
        let t = OwnerTrace::poisson(seed, rate, secs(5_000.0), 12, secs(busy));
        let back = OwnerTrace::from_text(&t.to_text()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Generated bags hit their requested work target without
    /// overshooting by more than one task.
    #[test]
    fn generate_work_overshoot_is_one_task(
        target in 10.0f64..500.0,
        seed in 0u64..1_000,
    ) {
        let dist = TaskDist::Uniform { lo: 0.5, hi: 4.0 };
        let bag = TaskBag::generate_work(dist, secs(target), seed);
        let total = bag.remaining_work();
        prop_assert!(total >= secs(target));
        prop_assert!(total < secs(target + 4.0), "overshot by a full task+");
    }

    /// Poisson traces respect horizon, cap and ordering for any seed.
    #[test]
    fn poisson_trace_invariants(
        seed in 0u64..10_000,
        rate in 0.0001f64..0.2,
        cap in 1usize..20,
    ) {
        let horizon = secs(1_000.0);
        let t = OwnerTrace::poisson(seed, rate, horizon, cap, secs(5.0));
        prop_assert!(t.len() <= cap);
        for w in t.events().windows(2) {
            prop_assert!(w[0].at_usable < w[1].at_usable);
        }
        for e in t.events() {
            prop_assert!(e.at_usable < horizon);
            prop_assert!(!e.busy_wall.is_negative());
        }
    }
}
