//! Owner-activity traces: when (in usable-lifespan time) the owner of a
//! lent workstation interrupts, and for how long (wall-clock) each
//! interruption keeps the machine away.
//!
//! The paper's contract promises a usable lifespan `U` and at most `p`
//! interrupts; these generators produce the owner behaviours the NOW-era
//! literature motivates — a Poisson "checks email now and then" owner, a
//! session-structured daytime owner, and the laptop that gets unplugged —
//! plus a plain-text serialization so traces can be recorded and replayed.

use cyclesteal_core::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One owner interruption: at `at_usable` units of *consumed usable
/// lifespan*, the owner reclaims the machine for `busy_wall` wall-clock
/// units (zero for the paper's instantaneous-kill reading).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OwnerEvent {
    /// When the interrupt lands, measured in consumed usable lifespan.
    pub at_usable: Time,
    /// How long the owner keeps the machine (wall-clock); the usable-
    /// lifespan clock is frozen while the owner is active.
    pub busy_wall: Time,
}

/// A (sorted) sequence of owner interruptions for one lender.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OwnerTrace {
    events: Vec<OwnerEvent>,
}

impl OwnerTrace {
    /// An owner who never interrupts.
    pub fn quiet() -> OwnerTrace {
        OwnerTrace::default()
    }

    /// Builds a trace from events; they must be strictly increasing in
    /// `at_usable` and non-negative in both fields.
    pub fn new(events: Vec<OwnerEvent>) -> OwnerTrace {
        for e in &events {
            assert!(!e.at_usable.is_negative() && !e.busy_wall.is_negative());
        }
        for w in events.windows(2) {
            assert!(
                w[0].at_usable < w[1].at_usable,
                "owner events must be strictly increasing in usable time"
            );
        }
        OwnerTrace { events }
    }

    /// The events, in order.
    pub fn events(&self) -> &[OwnerEvent] {
        &self.events
    }

    /// Number of interruptions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the owner never interrupts.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Only the interrupt instants (for the analytic game's
    /// `TraceAdversary`, which models instantaneous kills).
    pub fn interrupt_times(&self) -> Vec<Time> {
        self.events.iter().map(|e| e.at_usable).collect()
    }

    /// Poisson owner: interrupts arrive at `rate` per usable time unit
    /// over `[0, horizon)`, capped at `max_events`; each busy spell is
    /// exponential with mean `mean_busy` (zero mean ⇒ instantaneous).
    pub fn poisson(
        seed: u64,
        rate: f64,
        horizon: Time,
        max_events: usize,
        mean_busy: Time,
    ) -> OwnerTrace {
        assert!(rate >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        if rate == 0.0 {
            return OwnerTrace { events };
        }
        let mut t = 0.0f64;
        while events.len() < max_events {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate;
            if t >= horizon.get() {
                break;
            }
            let busy = if mean_busy.is_positive() {
                let v: f64 = rng.gen();
                Time::new(-(1.0 - v).ln() * mean_busy.get())
            } else {
                Time::ZERO
            };
            events.push(OwnerEvent {
                at_usable: Time::new(t),
                busy_wall: busy,
            });
        }
        OwnerTrace { events }
    }

    /// Session-structured owner: alternating away/back periods. The owner
    /// is away for `Uniform[away_lo, away_hi)` usable units, then returns
    /// and works for `Uniform[busy_lo, busy_hi)` wall units (one interrupt
    /// per return), until `horizon` usable units have elapsed.
    pub fn sessions(
        seed: u64,
        away: (f64, f64),
        busy: (f64, f64),
        horizon: Time,
        max_events: usize,
    ) -> OwnerTrace {
        assert!(away.0 > 0.0 && away.1 > away.0 && busy.0 >= 0.0 && busy.1 > busy.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        while events.len() < max_events {
            t += rng.gen_range(away.0..away.1);
            if t >= horizon.get() {
                break;
            }
            events.push(OwnerEvent {
                at_usable: Time::new(t),
                busy_wall: Time::new(rng.gen_range(busy.0..busy.1)),
            });
        }
        OwnerTrace { events }
    }

    /// The laptop owner: one fatal undocking at `at` (modelled as an
    /// interrupt followed by an effectively infinite busy spell, truncated
    /// to `rest_of_horizon`).
    pub fn laptop_undock(at: Time, rest_of_horizon: Time) -> OwnerTrace {
        OwnerTrace {
            events: vec![OwnerEvent {
                at_usable: at,
                busy_wall: rest_of_horizon,
            }],
        }
    }

    /// Serializes to a plain-text format: one `at_usable busy_wall` pair
    /// per line, `#`-prefixed comments allowed.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# owner trace: at_usable busy_wall (time units)\n");
        for e in &self.events {
            out.push_str(&format!("{} {}\n", e.at_usable.get(), e.busy_wall.get()));
        }
        out
    }

    /// Parses the [`OwnerTrace::to_text`] format.
    pub fn from_text(text: &str) -> Result<OwnerTrace, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let at: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing at_usable", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let busy: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing busy_wall", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            events.push(OwnerEvent {
                at_usable: Time::new(at),
                busy_wall: Time::new(busy),
            });
        }
        for w in events.windows(2) {
            if w[0].at_usable >= w[1].at_usable {
                return Err("events not strictly increasing".to_string());
            }
        }
        Ok(OwnerTrace { events })
    }
}

/// A named owner-behaviour family — the *workload* dimension of the
/// population-scale validation grid. Each climate describes how often
/// (and how maliciously) the owner reclaims the machine, in units of the
/// setup charge so the same catalogue is meaningful at every grid
/// resolution. The batch simulator maps climates onto its counter-seeded
/// adversaries; scalar studies can map them onto [`OwnerTrace`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnerClimate {
    /// The owner never comes back: the borrower keeps the machine for the
    /// whole contracted lifespan.
    Quiet,
    /// Rare Poisson arrivals — mean gap of 16 setup charges between
    /// owner returns.
    Sparse,
    /// Frequent Poisson arrivals — mean gap of 4 setup charges.
    Busy,
    /// The paper's malicious owner: interrupts exactly when (and only
    /// when) it minimizes the borrower's banked output. Observed output
    /// under this climate *equals* the guarantee.
    Hostile,
}

impl OwnerClimate {
    /// Every climate in the catalogue, in validation-grid order.
    pub fn all() -> [OwnerClimate; 4] {
        [
            OwnerClimate::Quiet,
            OwnerClimate::Sparse,
            OwnerClimate::Busy,
            OwnerClimate::Hostile,
        ]
    }

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OwnerClimate::Quiet => "quiet",
            OwnerClimate::Sparse => "sparse",
            OwnerClimate::Busy => "busy",
            OwnerClimate::Hostile => "hostile",
        }
    }

    /// Mean gap between owner arrivals in setup charges, for the
    /// stochastic climates; `None` for the deterministic ones.
    pub fn mean_gap_setups(self) -> Option<f64> {
        match self {
            OwnerClimate::Quiet | OwnerClimate::Hostile => None,
            OwnerClimate::Sparse => Some(16.0),
            OwnerClimate::Busy => Some(4.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn climate_catalogue_is_well_formed() {
        let all = OwnerClimate::all();
        for climate in all {
            assert!(!climate.name().is_empty());
            if let Some(gap) = climate.mean_gap_setups() {
                assert!(gap > 0.0);
            }
        }
        // Names are distinct (they key report rows).
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a.name(), b.name());
            }
        }
        // The busy climate really is busier than the sparse one.
        assert!(
            OwnerClimate::Busy.mean_gap_setups().unwrap()
                < OwnerClimate::Sparse.mean_gap_setups().unwrap()
        );
    }

    #[test]
    fn poisson_trace_is_deterministic_sorted_and_capped() {
        let a = OwnerTrace::poisson(1, 0.05, secs(1000.0), 8, secs(10.0));
        let b = OwnerTrace::poisson(1, 0.05, secs(1000.0), 8, secs(10.0));
        assert_eq!(a, b);
        assert!(a.len() <= 8);
        for w in a.events().windows(2) {
            assert!(w[0].at_usable < w[1].at_usable);
        }
        // Expected ~0.05·1000 = 50 arrivals, so the cap of 8 binds.
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn poisson_rate_zero_is_quiet() {
        let t = OwnerTrace::poisson(1, 0.0, secs(1000.0), 10, Time::ZERO);
        assert!(t.is_empty());
        assert_eq!(t, OwnerTrace::quiet());
    }

    #[test]
    fn sessions_trace_respects_horizon() {
        let t = OwnerTrace::sessions(3, (50.0, 100.0), (5.0, 20.0), secs(400.0), 100);
        assert!(t.len() <= 8); // at least 50 apart within 400
        for e in t.events() {
            assert!(e.at_usable < secs(400.0));
            assert!(e.busy_wall >= secs(5.0) && e.busy_wall < secs(20.0));
        }
    }

    #[test]
    fn laptop_undock_is_single_fatal_event() {
        let t = OwnerTrace::laptop_undock(secs(120.0), secs(10_000.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.interrupt_times(), vec![secs(120.0)]);
    }

    #[test]
    fn text_round_trip() {
        let t = OwnerTrace::poisson(7, 0.01, secs(2000.0), 16, secs(30.0));
        let text = t.to_text();
        let back = OwnerTrace::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_parser_rejects_garbage() {
        assert!(OwnerTrace::from_text("1.0").is_err());
        assert!(OwnerTrace::from_text("1.0 2.0 3.0").is_err());
        assert!(OwnerTrace::from_text("abc def").is_err());
        assert!(OwnerTrace::from_text("5.0 1.0\n4.0 1.0").is_err());
        // Comments and blanks are fine.
        let ok = OwnerTrace::from_text("# hi\n\n1.0 0.5\n2.0 0.0\n").unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn constructor_rejects_unsorted() {
        let _ = OwnerTrace::new(vec![
            OwnerEvent {
                at_usable: secs(5.0),
                busy_wall: Time::ZERO,
            },
            OwnerEvent {
                at_usable: secs(3.0),
                busy_wall: Time::ZERO,
            },
        ]);
    }
}
