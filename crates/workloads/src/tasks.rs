//! Data-parallel task bags.
//!
//! The paper's §2 assumptions: "tasks are indivisible; task times may vary
//! but are known perfectly; the time allotted to a task includes the
//! marginal cost of transmitting its input and output data." A [`TaskBag`]
//! is the bag-of-tasks a borrower draws periods of work from; because tasks
//! are indivisible, a period of length `t` carries the greedy prefix of
//! tasks fitting its `t ⊖ c` budget, and the shortfall is *quantization
//! waste* the continuum model does not see (measured by experiment E8).

use cyclesteal_core::time::{Time, Work};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One indivisible data-parallel task with a perfectly known duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Task {
    /// Stable identifier (unique within its bag).
    pub id: u64,
    /// The task's processing time, inclusive of marginal data-transfer
    /// costs (per the paper's accounting).
    pub duration: Time,
}

/// Families of task-duration distributions for workload generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskDist {
    /// All tasks take exactly this long.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive); must exceed `lo`.
        hi: f64,
    },
    /// A mix of short and long tasks (e.g. thumbnails vs full renders).
    Bimodal {
        /// Duration of the short class.
        short: f64,
        /// Duration of the long class.
        long: f64,
        /// Fraction of tasks in the long class, in `[0, 1]`.
        frac_long: f64,
    },
    /// Heavy-tailed Pareto with minimum `scale` and tail index `shape`
    /// (sampled by inverse CDF; `shape > 1` for a finite mean).
    Pareto {
        /// Tail index `α`.
        shape: f64,
        /// Minimum duration `x_m`.
        scale: f64,
    },
}

impl TaskDist {
    /// Samples one duration.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            TaskDist::Constant(d) => d,
            TaskDist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            TaskDist::Bimodal {
                short,
                long,
                frac_long,
            } => {
                if rng.gen_bool(frac_long) {
                    long
                } else {
                    short
                }
            }
            TaskDist::Pareto { shape, scale } => {
                let u: f64 = rng.gen(); // [0, 1)
                scale / (1.0 - u).powf(1.0 / shape)
            }
        }
    }

    /// The distribution's mean (exact; used to size bags).
    pub fn mean(&self) -> f64 {
        match *self {
            TaskDist::Constant(d) => d,
            TaskDist::Uniform { lo, hi } => 0.5 * (lo + hi),
            TaskDist::Bimodal {
                short,
                long,
                frac_long,
            } => short * (1.0 - frac_long) + long * frac_long,
            TaskDist::Pareto { shape, scale } => {
                assert!(shape > 1.0, "Pareto mean requires shape > 1");
                shape * scale / (shape - 1.0)
            }
        }
    }
}

/// A FIFO bag of indivisible tasks shared by the borrower's dispatchers.
#[derive(Clone, Debug, Default)]
pub struct TaskBag {
    tasks: VecDeque<Task>,
    next_id: u64,
}

impl TaskBag {
    /// An empty bag.
    pub fn new() -> TaskBag {
        TaskBag::default()
    }

    /// Generates `count` tasks from `dist` with a deterministic seed.
    pub fn generate(dist: TaskDist, count: usize, seed: u64) -> TaskBag {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bag = TaskBag::new();
        for _ in 0..count {
            let d = dist.sample(&mut rng);
            bag.push_duration(Time::new(d));
        }
        bag
    }

    /// Generates tasks until the bag holds at least `total` work.
    pub fn generate_work(dist: TaskDist, total: Time, seed: u64) -> TaskBag {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bag = TaskBag::new();
        let mut acc = Time::ZERO;
        while acc < total {
            let d = Time::new(dist.sample(&mut rng));
            acc += d;
            bag.push_duration(d);
        }
        bag
    }

    /// Appends a task of the given duration (ids are assigned in order).
    pub fn push_duration(&mut self, duration: Time) {
        assert!(duration.is_positive(), "task durations must be positive");
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.push_back(Task { id, duration });
    }

    /// Number of tasks remaining.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff no tasks remain.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work remaining in the bag.
    pub fn remaining_work(&self) -> Work {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Draws the greedy FIFO prefix of tasks whose total duration fits in
    /// `budget` (a period's `t ⊖ c`). Tasks are indivisible: the first
    /// task that does not fit stays in the bag, ending the draw (FIFO
    /// order is preserved — the paper's model has no reordering).
    pub fn take_fitting(&mut self, budget: Work) -> Vec<Task> {
        let mut out = Vec::new();
        let mut used = Work::ZERO;
        while let Some(&front) = self.tasks.front() {
            if used + front.duration <= budget {
                used += front.duration;
                out.push(front);
                self.tasks.pop_front();
            } else {
                break;
            }
        }
        out
    }

    /// Returns killed (never-completed) tasks to the *front* of the bag in
    /// their original order, so the draconian kill loses work but not
    /// tasks.
    pub fn requeue_front(&mut self, tasks: Vec<Task>) {
        for task in tasks.into_iter().rev() {
            self.tasks.push_front(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclesteal_core::time::secs;

    #[test]
    fn generation_is_seed_deterministic() {
        let d = TaskDist::Uniform { lo: 1.0, hi: 5.0 };
        let a = TaskBag::generate(d, 100, 42);
        let b = TaskBag::generate(d, 100, 42);
        let c = TaskBag::generate(d, 100, 43);
        assert_eq!(a.tasks, b.tasks);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn generate_work_reaches_target() {
        let d = TaskDist::Constant(3.0);
        let bag = TaskBag::generate_work(d, secs(10.0), 1);
        assert_eq!(bag.len(), 4); // 3+3+3+3 ≥ 10
        assert_eq!(bag.remaining_work(), secs(12.0));
    }

    #[test]
    fn sample_means_match_analytic_means() {
        let dists = [
            TaskDist::Constant(4.0),
            TaskDist::Uniform { lo: 1.0, hi: 9.0 },
            TaskDist::Bimodal {
                short: 1.0,
                long: 10.0,
                frac_long: 0.25,
            },
            TaskDist::Pareto {
                shape: 3.0,
                scale: 2.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(9);
        for d in dists {
            let n = 60_000;
            let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
            let emp = sum / n as f64;
            let want = d.mean();
            assert!(
                (emp - want).abs() / want < 0.05,
                "{d:?}: empirical {emp} vs analytic {want}"
            );
        }
    }

    #[test]
    fn take_fitting_is_greedy_fifo_and_indivisible() {
        let mut bag = TaskBag::new();
        for d in [3.0, 3.0, 5.0, 1.0] {
            bag.push_duration(secs(d));
        }
        // Budget 7: takes 3 + 3, stops at the 5 (indivisible, FIFO).
        let got = bag.take_fitting(secs(7.0));
        assert_eq!(got.len(), 2);
        assert_eq!(bag.len(), 2);
        assert_eq!(bag.remaining_work(), secs(6.0));
        // Zero budget takes nothing.
        assert!(bag.take_fitting(secs(0.0)).is_empty());
    }

    #[test]
    fn requeue_front_preserves_order() {
        let mut bag = TaskBag::new();
        for d in [1.0, 2.0, 3.0] {
            bag.push_duration(secs(d));
        }
        let taken = bag.take_fitting(secs(3.0)); // tasks 0 and 1
        assert_eq!(taken.len(), 2);
        bag.requeue_front(taken);
        let ids: Vec<u64> = bag.tasks.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let d = TaskDist::Pareto {
            shape: 1.5,
            scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let over4 = (0..n).filter(|_| d.sample(&mut rng) > 4.0).count();
        // P(X > 4) = 4^{−1.5} = 0.125.
        let frac = over4 as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.02, "tail fraction {frac}");
    }
}
