//! # cyclesteal-workloads
//!
//! Synthetic data-parallel workloads and owner-activity traces for the
//! NOW cycle-stealing experiments: the closest executable equivalent of
//! the workstation-pool setting the paper's introduction motivates
//! (render/compile/simulate task bags farmed out to colleagues' idle
//! machines, whose owners come back at inconvenient times).
//!
//! * [`tasks`] — indivisible tasks with perfectly known durations (the
//!   paper's §2 assumptions), bag-of-tasks plumbing, and four duration
//!   mixes (constant, uniform, bimodal, heavy-tailed Pareto).
//! * [`owner`] — interrupt traces: Poisson owners, session-structured
//!   owners, the undocked laptop; plus a plain-text trace format and the
//!   [`OwnerClimate`] catalogue of named owner-behaviour families used by
//!   the population-scale validation grid.
//!
//! Everything is seeded and reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod owner;
pub mod tasks;

pub use owner::{OwnerClimate, OwnerEvent, OwnerTrace};
pub use tasks::{Task, TaskBag, TaskDist};
