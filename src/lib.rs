//! # cyclesteal
//!
//! A production-quality Rust implementation of
//!
//! > Arnold L. Rosenberg, *"Guidelines for Data-Parallel Cycle-Stealing in
//! > Networks of Workstations, II: On Maximizing Guaranteed Output"*,
//! > IPPS 1999,
//!
//! together with every substrate the paper's model needs to be exercised
//! end-to-end: an exact minimax game solver, optimal and stochastic
//! adversaries, a discrete-event NOW simulator, workload generators, and
//! the companion expected-output submodel.
//!
//! This facade re-exports the whole workspace; see the individual crates
//! for depth:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cyclesteal-core` | model, schedules (§3.1, §3.2, §5.2, Thm 4.3), bounds, Table 1 |
//! | [`dp`] | `cyclesteal-dp` | exact `W^(p)[L]` solvers (dense frontier-sweep, breakpoint-compressed, event-driven run-skipping), table cache, dense + compressed-oracle policy evaluators |
//! | [`adversary`] | `cyclesteal-adversary` | optimal/stochastic adversaries, game runner |
//! | [`sim`] | `now-sim` | discrete-event NOW simulator |
//! | [`workloads`] | `cyclesteal-workloads` | task bags + owner traces |
//! | [`expected`] | `cyclesteal-expected` | expected-output companion submodel |
//! | [`par`] | `cyclesteal-par` | deterministic parallel sweep utilities |
//!
//! ## Thirty seconds of cycle-stealing
//!
//! ```
//! use cyclesteal::prelude::*;
//!
//! // Borrow a colleague's workstation for 2 hours (in units of the 30 s
//! // communication setup charge: U/c = 240) with at most 2 interrupts.
//! let opp = Opportunity::from_units(240.0, 1.0, 2);
//!
//! // The adaptive guideline (§3.2) plans this episode first:
//! let first = AdaptiveGuideline::default().episode(&opp).unwrap();
//!
//! // Against the worst-case owner it still banks most of the lifespan:
//! let table = cyclesteal::dp::ValueTable::solve(
//!     secs(1.0), 16, secs(240.0), 2, cyclesteal::dp::SolveOptions::default());
//! let optimal = table.value(2, secs(240.0));
//! assert!(optimal.get() > 200.0);
//! assert!(first.is_fully_productive(opp.setup()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use cyclesteal_adversary as adversary;
pub use cyclesteal_core as core;
pub use cyclesteal_dp as dp;
pub use cyclesteal_expected as expected;
pub use cyclesteal_par as par;
pub use cyclesteal_workloads as workloads;
pub use now_sim as sim;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use cyclesteal_adversary::{
        game::run_game, nonadaptive::worst_case, GameLog, NonAdaptiveWorstCase, OptimalAdversary,
        PoissonAdversary, PolicyAwareAdversary, TraceAdversary, UniformRandomAdversary,
    };
    pub use cyclesteal_core::prelude::*;
    pub use cyclesteal_dp::{
        evaluate_policy, evaluate_policy_compressed, CompressedEvalOptions,
        CompressedOptimalPolicy, CompressedPolicyValue, CompressedTable, EvalOptions, InnerLoop,
        OptimalPolicy, PolicyValue, RowRepr, SolveConfig, SolveOptions, TableCache, ValueTable,
    };
    pub use cyclesteal_expected::{expected_work, ExpectedDp, InterruptLaw};
    pub use cyclesteal_workloads::{OwnerEvent, OwnerTrace, Task, TaskBag, TaskDist};
    pub use now_sim::{DriverKind, LenderConfig, NowSim, SimReport};
}
