//! Integration tests pinning the paper's quantitative claims, each tagged
//! with the section it machine-checks.

use cyclesteal::prelude::*;
use std::sync::Arc;

const C: f64 = 1.0;

fn opp(u: f64, p: u32) -> Opportunity {
    Opportunity::from_units(u, C, p)
}

/// §5.2 / Table 2: the exact optimal `p = 1` value tracks
/// `U − √(2cU) − c/2` to within the discretization of `m`.
#[test]
fn table2_w1_approximation_quality() {
    for &u in &[100.0, 1_000.0, 10_000.0, 100_000.0] {
        let exact = w1_exact(secs(u), secs(C));
        let approx = w1_approx(secs(u), secs(C));
        assert!(
            (exact - approx).abs() <= secs(1.0),
            "U={u}: |{exact} − {approx}| too large"
        );
    }
}

/// Table 2's schedule-shape row: `t_k ≈ √(2cU) − kc` for the optimal
/// schedule's early periods.
#[test]
fn table2_period_length_row() {
    let u = 10_000.0;
    let s = optimal_p1_schedule(secs(u), secs(C)).unwrap();
    let sqrt2cu = (2.0 * C * u).sqrt();
    for k in [1usize, 5, 20, 50] {
        let predicted = sqrt2cu - k as f64 * C;
        let actual = s.period(k - 1).get(); // paper is 1-indexed
        assert!(
            (actual - predicted).abs() <= 2.0,
            "t_{k}: actual {actual} vs √(2cU)−kc = {predicted}"
        );
    }
}

/// Proposition 4.1 at the level of the exact game value.
#[test]
fn proposition_41_on_the_exact_game() {
    let table = ValueTable::solve(secs(C), 8, secs(200.0), 4, SolveOptions::default());
    // (a) nondecreasing in U, (b) nonincreasing in p: checked densely.
    for p in 0..=4u32 {
        let mut prev = Work::ZERO;
        let mut u = 0.0;
        while u <= 200.0 {
            let w = table.value(p, secs(u));
            assert!(w + secs(1e-9) >= prev, "(a) fails at p={p}, U={u}");
            if p > 0 {
                assert!(
                    w <= table.value(p - 1, secs(u)) + secs(1e-9),
                    "(b) fails at p={p}, U={u}"
                );
            }
            prev = w;
            u += 3.7;
        }
        // (c) zero exactly up to (p+1)c.
        let threshold = zero_work_threshold(secs(C), p);
        assert_eq!(table.value(p, threshold), Work::ZERO);
        // (d) p = 0 is the single-period closed form.
        assert!(table
            .value(0, secs(123.0))
            .approx_eq(w0(secs(123.0), secs(C)), secs(1e-9)));
    }
}

/// Theorem 4.1: productive normalization never decreases guaranteed work,
/// measured by the exact policy evaluator on schedules with nonproductive
/// periods.
#[test]
fn theorem_41_productive_normalization() {
    let c = secs(C);
    let raw = EpisodeSchedule::from_periods(
        [0.5, 6.0, 0.9, 5.0, 0.3, 7.3]
            .iter()
            .map(|&x| secs(x))
            .collect(),
    )
    .unwrap();
    let norm = raw.make_productive(c);
    assert!(norm.is_productive(c));
    let u = raw.total();
    // Compare worst cases as committed (non-adaptive, p = 2) schedules.
    let raw_run = NonAdaptiveRun::new(raw, c, u, 2).unwrap();
    let norm_run = NonAdaptiveRun::new(norm, c, u, 2).unwrap();
    assert!(worst_case(&norm_run).work >= worst_case(&raw_run).work);
}

/// Theorem 4.2: splitting a never-interrupted long tail period in two
/// cannot decrease an episode's work production (it banks the same time
/// minus one extra setup — but protects against nothing, so the paper's
/// claim is about r-immune tails; we check the no-interrupt accounting
/// direction that drives the proof).
#[test]
fn theorem_42_tail_splitting() {
    // A schedule whose last period is long; with p = 1 the adversary never
    // gains by hitting the tail of the *optimal* schedule, so splitting it
    // must keep the worst case within one setup charge.
    let c = secs(C);
    let u = secs(400.0);
    let s = optimal_p1_schedule(u, c).unwrap();
    let split = s.split_period(s.len() - 1).unwrap();
    let orig = NonAdaptiveRun::new(s, c, u, 1).unwrap();
    let alt = NonAdaptiveRun::new(split, c, u, 1).unwrap();
    let w_orig = worst_case(&orig).work;
    let w_alt = worst_case(&alt).work;
    assert!(
        w_alt >= w_orig - c,
        "splitting the tail lost more than a setup charge: {w_alt} vs {w_orig}"
    );
}

/// Observation (a): for any fixed period, interrupting at the last instant
/// is (weakly) the adversary's best choice within that period.
#[test]
fn observation_a_last_instant_dominates() {
    let table = ValueTable::solve(secs(C), 16, secs(100.0), 2, SolveOptions::default());
    let u = secs(100.0);
    let s = AdaptiveGuideline::default()
        .episode(&opp(100.0, 2))
        .unwrap();
    // For every period k and a few interior offsets τ: the continuation
    // left to the owner is larger (never smaller) than at the last instant.
    for (k, start, t) in s.iter_windows().take(6) {
        let last = table.value(1, (u - (start + t)).clamp_min_zero());
        for frac in [0.0, 0.3, 0.7, 0.95] {
            let tau = start + t * frac;
            let mid = table.value(1, u - tau);
            assert!(
                mid + secs(1e-9) >= last,
                "period {k}, frac {frac}: mid {mid} < last {last}"
            );
        }
    }
}

/// Observation (b): with budget left and a worthwhile episode, the optimal
/// adversary interrupts.
#[test]
fn observation_b_always_interrupts() {
    let table = Arc::new(ValueTable::solve(
        secs(C),
        16,
        secs(150.0),
        3,
        SolveOptions::default(),
    ));
    let policy = OptimalPolicy::new(table.clone());
    for p in 1..=3u32 {
        for &u in &[20.0, 80.0, 150.0] {
            let mut adv = OptimalAdversary::new(table.as_ref());
            let log = run_game(&policy, &mut adv, &opp(u, p)).unwrap();
            assert_eq!(
                log.interrupts_used(),
                p as usize,
                "adversary left budget unused at p={p}, U={u}"
            );
        }
    }
}

/// Observation (c): the adversary's chosen interrupt leaves the owner a
/// residual worth attacking — it lands in a period beginning before
/// `U − pc`.
#[test]
fn observation_c_interrupt_position() {
    let table = Arc::new(ValueTable::solve(
        secs(C),
        16,
        secs(120.0),
        2,
        SolveOptions::default(),
    ));
    let policy = OptimalPolicy::new(table.clone());
    for &u in &[60.0, 120.0] {
        let mut adv = OptimalAdversary::new(table.as_ref());
        let log = run_game(&policy, &mut adv, &opp(u, 2)).unwrap();
        let first = &log.episodes[0];
        if let InterruptSpec::LastInstantOf(k) = first.response {
            let sched = policy.episode(&opp(u, 2)).unwrap();
            let begins = sched.start_of(k);
            assert!(
                begins < secs(u - 2.0 * C),
                "U={u}: interrupted a period beginning at {begins} ≥ U − pc"
            );
        } else {
            panic!("Observation (b) violated first");
        }
    }
}

/// §3.1's analysis: the non-adaptive guideline's exact worst case equals
/// the closed form `(m−p)(U/m − c)`, i.e. `U − 2√(pcU) + pc + O(·)`
/// (DESIGN.md §1.1 note 1), and the adversary's optimal play kills whole
/// periods at last instants.
#[test]
fn section_31_nonadaptive_guarantee() {
    for &(u, p) in &[(5_000.0, 1u32), (20_000.0, 2), (50_000.0, 4)] {
        let o = opp(u, p);
        let run = NonAdaptiveGuideline::run(&o).unwrap();
        let wc = worst_case(&run);
        assert!(wc
            .work
            .approx_eq(NonAdaptiveGuideline::guarantee(&o), secs(1e-6)));
        let continuum = u - 2.0 * (p as f64 * C * u).sqrt() + p as f64 * C;
        let slack = (C * u / p as f64).sqrt() + C; // one period's worth
        assert!(
            (wc.work.get() - continuum).abs() <= slack,
            "U={u},p={p}: worst case {w} vs continuum {continuum}",
            w = wc.work
        );
    }
}

/// Theorem 5.1 at scale, with the **corrected** constants this
/// reproduction derives (EXPERIMENTS.md E5; `bounds::loss_coefficient`):
/// 1. both guidelines are near-optimal (deficit vs the exact optimum is a
///    low-order term relative to the `√(2cU)` loss);
/// 2. the self-similar guideline's measured loss coefficient
///    `(U − W)/√(2cU)` lands on `β_p` (golden recursion), while the
///    paper's printed `2 − 2^(1−p)` sits strictly below the exact
///    optimum for `p ≥ 2` — i.e. the printed bound is unachievable;
/// 3. the corrected bound with fitted low-order constants holds.
///
/// Plus the headline: adaptivity pays for `p ≥ 2` at this scale.
#[test]
fn theorem_51_guarantee_at_scale() {
    let u = 4096.0;
    let table = ValueTable::solve(secs(C), 8, secs(u), 4, SolveOptions::default());
    let arith = evaluate_policy(
        &AdaptiveGuideline::default(),
        secs(C),
        8,
        secs(u),
        4,
        EvalOptions::default(),
    )
    .unwrap();
    let selfsim = evaluate_policy(
        &SelfSimilarGuideline::default(),
        secs(C),
        8,
        secs(u),
        4,
        EvalOptions::default(),
    )
    .unwrap();
    for p in 1..=4u32 {
        let w_ar = arith.value(p, secs(u));
        let w_ss = selfsim.value(p, secs(u));
        let o = opp(u, p);

        // (1) Near-optimality of both guidelines.
        let optimal = table.value(p, secs(u));
        for (name, w) in [("arithmetic", w_ar), ("self-similar", w_ss)] {
            assert!(
                w + secs(0.5 * (C * u).sqrt() + 2.0 * C) >= optimal,
                "p={p}: {name} guideline {w} too far below optimum {optimal}"
            );
        }

        // (2) Coefficients: self-similar lands on β_p; the exact optimum
        // sits above the printed constant (making the printed bound
        // unachievable for p ≥ 2).
        let coeff = |w: Work| (u - w.get()) / (2.0 * C * u).sqrt();
        let beta = loss_coefficient(p);
        assert!(
            (coeff(w_ss) - beta).abs() < 0.1,
            "p={p}: self-similar coefficient {} vs β_p {beta}",
            coeff(w_ss)
        );
        let printed = 2.0 - 2.0f64.powi(1 - p as i32);
        if p >= 2 {
            assert!(
                coeff(optimal) > printed + 0.05,
                "p={p}: optimal coefficient {} does not exceed printed {printed} — \
                 the printed bound would be achievable after all",
                coeff(optimal)
            );
        }

        // (3) Corrected bound with fitted low-order constants.
        let bound = corrected_guarantee(&o, 4.0, 4.0);
        assert!(
            w_ss + secs(1e-6) >= bound,
            "p={p}: self-similar {w_ss} below corrected bound {bound}"
        );

        // Headline: adaptivity pays for p ≥ 2 at this (U, p) scale.
        if p >= 2 {
            assert!(
                w_ss >= nonadaptive_guarantee(&o) - secs(1.0),
                "p={p}: adaptive {w_ss} loses to non-adaptive"
            );
        }
    }
}

/// Table 1 regenerated for the optimal schedule shows the equalization the
/// paper's §4.2 strategy aims for, and the adversary's value matches the
/// exact `W^(p)`.
#[test]
fn table1_regeneration_consistency() {
    let table = ValueTable::solve(secs(C), 32, secs(100.0), 2, SolveOptions::default());
    for p in 1..=2u32 {
        let o = opp(100.0, p);
        let sched = table.episode(p, secs(100.0)).unwrap();
        let rows = table1(&table, &o, &sched);
        assert_eq!(rows.len(), sched.len() + 1);
        let v = adversary_value(&rows);
        let w = table.value(p, secs(100.0));
        assert!(
            (v - w).abs() <= secs(0.25),
            "p={p}: Table-1 min {v} vs W^(p) {w}"
        );
    }
}
