//! Integration: the discrete-event simulator against the analytic model.
//!
//! Experiment E8's test-sized core: for identical interrupt traces, the
//! engine's banked `Σ(t ⊖ c)` must reproduce the analytic game transcript
//! for every discipline, and the quantization/conservation accounting must
//! close for every task mix.

use cyclesteal::prelude::*;
use std::sync::Arc;

const C: f64 = 1.0;

fn tiny_tasks(total: f64) -> TaskBag {
    TaskBag::generate_work(TaskDist::Constant(0.015625), secs(total), 3)
}

fn adaptive_policies() -> Vec<Arc<dyn EpisodePolicy>> {
    vec![
        Arc::new(AdaptiveGuideline::default()),
        Arc::new(OptimalP1Policy),
        Arc::new(EqualPeriodsPolicy::new(7)),
        Arc::new(HalvingPolicy::default()),
        Arc::new(FixedChunkPolicy::new(secs(13.0))),
    ]
}

#[test]
fn sim_matches_game_for_every_policy_and_trace() {
    for (pi, policy) in adaptive_policies().into_iter().enumerate() {
        for seed in 0..6u64 {
            let u = 400.0;
            let p = 3u32;
            let trace = OwnerTrace::poisson(
                seed * 31 + pi as u64,
                0.006,
                secs(u - 5.0),
                p as usize,
                Time::ZERO,
            );
            let opp = Opportunity::from_units(u, C, p);

            let mut adv = TraceAdversary::new(trace.interrupt_times());
            let analytic = run_game(policy.as_ref(), &mut adv, &opp).unwrap();

            let cfg = LenderConfig {
                name: format!("ws-{pi}-{seed}"),
                opportunity: opp,
                owner: trace,
                driver: DriverKind::Adaptive(policy.clone()),
                deadline: None,
            };
            let report = NowSim::new(vec![cfg], tiny_tasks(500.0)).run().unwrap();
            let m = &report.lenders[0].1;
            assert!(
                m.continuum_work.approx_eq(analytic.total_work, secs(1e-6)),
                "{} seed {seed}: sim {} vs game {}",
                policy.name(),
                m.continuum_work,
                analytic.total_work
            );
        }
    }
}

#[test]
fn sim_nonadaptive_matches_closed_form_worst_case() {
    // Drive the simulator with the *adversary's own* optimal kill set,
    // converted to last-instant owner events; the banked work must equal
    // the combinatorial worst case.
    let u = 2_500.0;
    let p = 3u32;
    let opp = Opportunity::from_units(u, C, p);
    let run = NonAdaptiveGuideline::run(&opp).unwrap();
    let wc = worst_case(&run);
    assert!(!wc.killed.is_empty());

    // Owner events at the last instants of the killed periods. Windows
    // are half-open, and each ε-early kill shifts the replayed tail ε
    // earlier, so the i-th event needs a cumulative (i+1)·ε nudge to land
    // inside its intended (shifted) period.
    let eps = 1e-6;
    let events: Vec<OwnerEvent> = wc
        .killed
        .iter()
        .enumerate()
        .map(|(i, &k)| OwnerEvent {
            at_usable: run.schedule().boundary(k) - secs(eps * (i + 1) as f64),
            busy_wall: Time::ZERO,
        })
        .collect();
    let cfg = LenderConfig {
        name: "na".into(),
        opportunity: opp,
        owner: OwnerTrace::new(events),
        driver: DriverKind::NonAdaptive(run.schedule().clone()),
        deadline: None,
    };
    let report = NowSim::new(vec![cfg], tiny_tasks(3_000.0)).run().unwrap();
    let m = &report.lenders[0].1;
    // The ε-early interrupts only stretch the consolidated tail by O(p·ε).
    assert!(
        (m.continuum_work - wc.work).abs() <= secs(0.001),
        "sim {} vs worst case {}",
        m.continuum_work,
        wc.work
    );
}

#[test]
fn accounting_closes_for_every_task_mix() {
    let mixes = [
        TaskDist::Constant(2.0),
        TaskDist::Uniform { lo: 0.2, hi: 6.0 },
        TaskDist::Bimodal {
            short: 0.5,
            long: 12.0,
            frac_long: 0.2,
        },
        TaskDist::Pareto {
            shape: 2.0,
            scale: 0.8,
        },
    ];
    for (i, dist) in mixes.into_iter().enumerate() {
        let bag = TaskBag::generate(dist, 400, 11 + i as u64);
        let total_tasks = bag.len();
        let cfg = LenderConfig {
            name: format!("mix-{i}"),
            opportunity: Opportunity::from_units(600.0, C, 3),
            owner: OwnerTrace::poisson(i as u64, 0.005, secs(600.0), 3, secs(10.0)),
            driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
            deadline: None,
        };
        let report = NowSim::new(vec![cfg], bag).run().unwrap();
        let m = &report.lenders[0].1;
        // Conservation: every task is either done or still in the bag.
        assert_eq!(m.tasks_completed + report.tasks_remaining, total_tasks);
        // Waste accounting closes: banked capacity = task work + waste.
        assert!(
            (m.task_work + m.quantization_waste).approx_eq(m.continuum_work, secs(1e-6)),
            "mix {i}: accounting gap"
        );
        // Lifespan accounting closes: consumed + unused = contracted.
        assert!(
            (m.consumed_lifespan + m.unused_lifespan).approx_eq(secs(600.0), secs(1e-6))
                || m.done_reason == now_sim::DoneReason::OutOfTasks,
            "mix {i}: lifespan gap ({:?})",
            m.done_reason
        );
    }
}

#[test]
fn guideline_comparison_under_malicious_traces() {
    // Worst-case trace for the adaptive guideline (from its policy-aware
    // adversary), replayed in the simulator: the banked work must land on
    // the evaluator's guaranteed value, and remain above the non-adaptive
    // guideline's guarantee for p = 2.
    let u = 512.0;
    let p = 2u32;
    let policy = AdaptiveGuideline::default();
    let pv = evaluate_policy(&policy, secs(C), 16, secs(u), p, EvalOptions::default()).unwrap();
    let guaranteed = pv.value(p, secs(u));

    let opp = Opportunity::from_units(u, C, p);
    let mut adv = PolicyAwareAdversary::new(pv);
    let log = run_game(&policy, &mut adv, &opp).unwrap();
    assert!((log.total_work - guaranteed).abs() <= secs(0.5));

    // Reconstruct the trace, ε-nudged inside the half-open windows, and
    // replay it both analytically and in the simulator: the two replays
    // share exact semantics and must agree to float precision.
    let eps = 1e-6;
    let mut abs = Vec::new();
    let mut elapsed = Time::ZERO;
    for ep in &log.episodes {
        if !matches!(ep.response, InterruptSpec::None) {
            abs.push(elapsed + ep.consumed - secs(eps * (abs.len() + 1) as f64));
        }
        elapsed += ep.consumed;
    }
    let mut replay_adv = TraceAdversary::new(abs.clone());
    let replay = run_game(&policy, &mut replay_adv, &opp).unwrap();
    // The ε-nudged trace is still (essentially) worst case.
    assert!(
        (replay.total_work - guaranteed).abs() <= secs(1.0),
        "nudged replay {} vs guaranteed {}",
        replay.total_work,
        guaranteed
    );

    let events = abs
        .iter()
        .map(|&t| OwnerEvent {
            at_usable: t,
            busy_wall: Time::ZERO,
        })
        .collect();
    let cfg = LenderConfig {
        name: "malicious".into(),
        opportunity: opp,
        owner: OwnerTrace::new(events),
        driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
        deadline: None,
    };
    let report = NowSim::new(vec![cfg], tiny_tasks(600.0)).run().unwrap();
    let m = &report.lenders[0].1;
    assert!(
        (m.continuum_work - replay.total_work).abs() <= secs(1e-6),
        "sim {} vs analytic replay {}",
        m.continuum_work,
        replay.total_work
    );
    assert!(m.continuum_work + secs(1.0) >= nonadaptive_guarantee(&opp));
}

#[test]
fn pool_run_is_deterministic() {
    let mk = || {
        let lenders: Vec<LenderConfig> = (0..4)
            .map(|i| LenderConfig {
                name: format!("ws{i}"),
                opportunity: Opportunity::from_units(300.0 + 50.0 * i as f64, C, 2),
                owner: OwnerTrace::poisson(100 + i, 0.01, secs(500.0), 2, secs(20.0)),
                driver: DriverKind::Adaptive(Arc::new(AdaptiveGuideline::default())),
                deadline: None,
            })
            .collect();
        let bag = TaskBag::generate(TaskDist::Uniform { lo: 0.5, hi: 4.0 }, 500, 77);
        NowSim::new(lenders, bag).run().unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.tasks_remaining, b.tasks_remaining);
    assert_eq!(a.total_tasks(), b.total_tasks());
    for ((na, ma), (nb, mb)) in a.lenders.iter().zip(&b.lenders) {
        assert_eq!(na, nb);
        assert_eq!(ma.tasks_completed, mb.tasks_completed);
        assert!(ma.continuum_work.approx_eq(mb.continuum_work, secs(0.0)));
    }
}
