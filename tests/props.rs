//! Cross-crate property-based tests (proptest): the model's invariants
//! under randomized parameters, schedules and adversaries.

use cyclesteal::prelude::*;
use proptest::prelude::*;

const C: f64 = 1.0;

fn arb_periods() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..30.0, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ⊖ is monotone, bounded and exact where it matters.
    #[test]
    fn pos_sub_invariants(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let x = secs(a).pos_sub(secs(b));
        prop_assert!(x >= Time::ZERO);
        prop_assert!(x.get() <= a.max(0.0) - b.min(0.0) + 1e-9);
        if a >= b {
            prop_assert!((x.get() - (a - b)).abs() < 1e-12);
        } else {
            prop_assert_eq!(x, Time::ZERO);
        }
    }

    /// Theorem 4.1's normalization: lifespan preserved, productivity
    /// achieved, uninterrupted work never decreased.
    #[test]
    fn make_productive_invariants(periods in arb_periods()) {
        let sched = EpisodeSchedule::from_periods(
            periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let c = secs(C);
        let norm = sched.make_productive(c);
        prop_assert!(norm.total().approx_eq(sched.total(), secs(1e-6)));
        prop_assert!(norm.is_productive(c));
        prop_assert!(norm.work_uninterrupted(c) + secs(1e-9) >= sched.work_uninterrupted(c));
    }

    /// Boundaries are monotone and `locate` inverts them.
    #[test]
    fn schedule_geometry(periods in arb_periods(), frac in 0.0f64..0.999) {
        let sched = EpisodeSchedule::from_periods(
            periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let bounds = sched.boundaries();
        for w in bounds.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let t = sched.total() * frac;
        let (k, offset) = sched.locate(t).expect("interior point locates");
        prop_assert!((sched.start_of(k) + offset).approx_eq(t, secs(1e-9)));
        prop_assert!(offset < sched.period(k));
    }

    /// The non-adaptive worst case is a lower bound on every explicit
    /// adversary choice.
    #[test]
    fn nonadaptive_worst_case_is_a_lower_bound(
        periods in arb_periods(),
        budget in 0u32..4,
        pick in prop::collection::btree_set(0usize..40, 0..4)
    ) {
        let sched = EpisodeSchedule::from_periods(
            periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let u = sched.total();
        let m = sched.len();
        let run = NonAdaptiveRun::new(sched, secs(C), u, budget).unwrap();
        let wc = worst_case(&run);
        prop_assert!(wc.work <= run.work_uninterrupted() + secs(1e-9));
        // Any valid explicit choice concedes at least the worst case.
        let killed: Vec<usize> = pick.into_iter().filter(|&k| k < m)
            .take(budget as usize).collect();
        let w = run.work_given_killed(&killed).unwrap();
        prop_assert!(w + secs(1e-9) >= wc.work,
            "explicit {killed:?} gives {w} below worst case {}", wc.work);
    }

    /// Game-level conservation laws under random stochastic adversaries.
    #[test]
    fn game_conservation(u in 5.0f64..800.0, p in 0u32..5, seed in 0u64..5000, prob in 0.0f64..1.0) {
        let opp = Opportunity::from_units(u, C, p);
        let policy = AdaptiveGuideline::default();
        let mut adv = UniformRandomAdversary::new(seed, prob);
        let log = run_game(&policy, &mut adv, &opp).unwrap();
        prop_assert!(log.interrupts_used() <= p as usize);
        prop_assert!(log.consumed() <= secs(u) + secs(1e-6));
        prop_assert!(log.total_work >= Work::ZERO);
        prop_assert!(log.total_work <= secs(u).pos_sub(secs(C)) + secs(1e-6));
        // Final episode is uninterrupted (that is how games end).
        let last = log.episodes.last().unwrap();
        prop_assert!(matches!(last.response, InterruptSpec::None));
    }

    /// §5.2's closed form stays within Table 2's approximation band and
    /// between the Thm 5.1 leading bound and the lifespan.
    #[test]
    fn w1_closed_form_band(u in 3.0f64..200_000.0) {
        let w = w1_exact(secs(u), secs(C));
        prop_assert!(w <= secs(u));
        let approx = w1_approx(secs(u), secs(C));
        prop_assert!((w - approx).abs() <= secs(1.5),
            "U={u}: exact {w} vs approx {approx}");
        // Never below the p=1 leading bound minus a setup charge.
        let lead = u - (2.0 * C * u).sqrt() - 1.5 * C;
        prop_assert!(w.get() >= lead.max(0.0) - 1e-9);
    }

    /// The equalizer built on the exact p=0 oracle reproduces W^(1) for
    /// random lifespans.
    #[test]
    fn equalizer_matches_w1(u in 3.0f64..3000.0) {
        let oracle = ClosedFormOracle::new(secs(C));
        let opp = Opportunity::from_units(u, C, 1);
        let (sched, value) = equalized_schedule(&oracle, &opp).unwrap();
        prop_assert!(sched.total().approx_eq(secs(u), secs(1e-6)));
        prop_assert!((value - w1_exact(secs(u), secs(C))).abs() <= secs(1e-4),
            "U={u}: equalizer {value}");
    }

    /// Adaptive guideline schedules partition the lifespan and stay fully
    /// productive whenever the structured regime applies.
    #[test]
    fn adaptive_guideline_valid(u in 0.5f64..5000.0, p in 0u32..5) {
        let opp = Opportunity::from_units(u, C, p);
        let sched = AdaptiveGuideline::default().episode(&opp).unwrap();
        prop_assert!(sched.total().approx_eq(secs(u), secs(1e-6)));
        for &t in sched.periods() {
            prop_assert!(t.is_positive());
        }
        if u > 3.0 * (p as f64).max(1.0) * 1.5 + 1.0 {
            prop_assert!(sched.is_fully_productive(secs(C)),
                "nonproductive period at U={u}, p={p}");
        }
    }

    /// Expected-output model: analytic expectation within MC error, and
    /// bounded by the uninterrupted work.
    #[test]
    fn expected_work_bounds(periods in arb_periods(), rate in 0.001f64..0.2) {
        let sched = EpisodeSchedule::from_periods(
            periods.iter().map(|&x| secs(x)).collect()).unwrap();
        let c = secs(C);
        let law = InterruptLaw::Exponential { rate };
        let ew = expected_work(&sched, c, &law);
        prop_assert!(ew >= Work::ZERO);
        prop_assert!(ew <= sched.work_uninterrupted(c) + secs(1e-9));
    }
}
